// Package asm assembles textual kernels into isa.Kernel images.
//
// The syntax is a compact SASS/PTX hybrid, one instruction per line:
//
//	.kernel pathfinder      // kernel name (directive)
//	.shared 1024            // per-CTA shared memory bytes (optional)
//	    mov   r0, %tid.x    // specials read with % names
//	    mad   r2, r1, 256, r0
//	    setp.lt p0, r0, 16  // predicate compare
//	@p0 bra Lthen           // guarded branch (source of divergence)
//	    ld.global r4, [r3+16]
//	    st.shared [r5], r4
//	Lthen:
//	    exit
//
// Comments run from "//", "#" or ";" to end of line. Labels are identifiers
// followed by ":" and may share a line with an instruction. Immediates are
// decimal, hex (0x..), or single-precision floats written with a decimal
// point or exponent (stored as their IEEE-754 bit pattern).
package asm

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type assembler struct {
	kernel  isa.Kernel
	labels  map[string]int32
	fixups  []fixup // branch targets to resolve
	curLine int
}

type fixup struct {
	pc    int
	label string
	line  int
}

// Assemble parses and validates one kernel from source text. defaultName is
// used when the source has no .kernel directive.
func Assemble(defaultName, src string) (*isa.Kernel, error) {
	a := &assembler{labels: make(map[string]int32)}
	a.kernel.Name = defaultName

	for i, raw := range strings.Split(src, "\n") {
		a.curLine = i + 1
		if err := a.line(raw); err != nil {
			return nil, err
		}
	}
	for _, f := range a.fixups {
		pc, ok := a.labels[f.label]
		if !ok {
			return nil, &Error{f.line, fmt.Sprintf("undefined label %q", f.label)}
		}
		a.kernel.Code[f.pc].Target = pc
	}
	a.kernel.ComputeRegUsage()
	if err := a.kernel.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return &a.kernel, nil
}

// MustAssemble is Assemble that panics on error; for statically known-good
// built-in kernels and tests.
func MustAssemble(name, src string) *isa.Kernel {
	k, err := Assemble(name, src)
	if err != nil {
		panic(err)
	}
	return k
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{a.curLine, fmt.Sprintf(format, args...)}
}

func (a *assembler) line(raw string) error {
	// Strip comments.
	for _, marker := range []string{"//", "#", ";"} {
		if idx := strings.Index(raw, marker); idx >= 0 {
			raw = raw[:idx]
		}
	}
	s := strings.TrimSpace(raw)
	if s == "" {
		return nil
	}

	// Labels (possibly several) at line start.
	for {
		idx := strings.Index(s, ":")
		if idx <= 0 || strings.ContainsAny(s[:idx], " \t,[") {
			break
		}
		label := s[:idx]
		if !isIdent(label) {
			return a.errf("invalid label %q", label)
		}
		if _, dup := a.labels[label]; dup {
			return a.errf("duplicate label %q", label)
		}
		a.labels[label] = int32(len(a.kernel.Code))
		s = strings.TrimSpace(s[idx+1:])
		if s == "" {
			return nil
		}
	}

	if strings.HasPrefix(s, ".") {
		return a.directive(s)
	}
	return a.instruction(s)
}

func (a *assembler) directive(s string) error {
	fields := strings.Fields(s)
	switch fields[0] {
	case ".kernel":
		if len(fields) != 2 || !isIdent(fields[1]) {
			return a.errf(".kernel needs a single identifier")
		}
		a.kernel.Name = fields[1]
	case ".shared":
		if len(fields) != 2 {
			return a.errf(".shared needs a byte count")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return a.errf(".shared: invalid byte count %q", fields[1])
		}
		a.kernel.SharedBytes = n
	default:
		return a.errf("unknown directive %s", fields[0])
	}
	return nil
}

func (a *assembler) instruction(s string) error {
	var in isa.Instr
	in.Dst = isa.RegNone
	in.PDst = isa.PredNone
	in.Pred = isa.PredNone
	in.PSrc = isa.PredNone
	in.Target = -1

	// Guard prefix.
	if strings.HasPrefix(s, "@") {
		sp := strings.IndexAny(s, " \t")
		if sp < 0 {
			return a.errf("guard without instruction")
		}
		g := s[1:sp]
		if strings.HasPrefix(g, "!") {
			in.PredNeg = true
			g = g[1:]
		}
		p, err := parsePred(g)
		if err != nil {
			return a.errf("bad guard %q", s[1:sp])
		}
		in.Pred = p
		s = strings.TrimSpace(s[sp:])
	}

	// Mnemonic (may have .suffix for setp).
	sp := strings.IndexAny(s, " \t")
	mnem, rest := s, ""
	if sp >= 0 {
		mnem, rest = s[:sp], strings.TrimSpace(s[sp:])
	}

	if strings.HasPrefix(mnem, "setp.") {
		cmp, ok := isa.CmpByName(mnem[len("setp."):])
		if !ok {
			return a.errf("unknown comparison %q", mnem)
		}
		in.Op, in.Cmp = isa.OpSetP, cmp
	} else {
		op, ok := isa.OpcodeByName(mnem)
		if !ok {
			return a.errf("unknown mnemonic %q", mnem)
		}
		in.Op = op
	}

	ops, err := splitOperands(rest)
	if err != nil {
		return a.errf("%v", err)
	}
	if err := a.operands(&in, ops); err != nil {
		return err
	}
	a.kernel.Code = append(a.kernel.Code, in)
	return nil
}

// operands fills in the instruction fields from the textual operand list.
func (a *assembler) operands(in *isa.Instr, ops []string) error {
	need := func(n int) error {
		if len(ops) != n {
			return a.errf("%s expects %d operands, got %d", in.Op, n, len(ops))
		}
		return nil
	}
	switch in.Op {
	case isa.OpNop, isa.OpExit, isa.OpBar:
		return need(0)

	case isa.OpBra:
		if err := need(1); err != nil {
			return err
		}
		if !isIdent(ops[0]) {
			return a.errf("bra expects a label, got %q", ops[0])
		}
		a.fixups = append(a.fixups, fixup{len(a.kernel.Code), ops[0], a.curLine})
		return nil

	case isa.OpSetP:
		if err := need(3); err != nil {
			return err
		}
		p, err := parsePred(ops[0])
		if err != nil {
			return a.errf("setp destination: %v", err)
		}
		in.PDst = p
		return a.srcs(in, ops[1:], 0)

	case isa.OpSelP:
		if err := need(4); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return a.errf("selp destination: %v", err)
		}
		in.Dst = d
		p, err := parsePred(ops[3])
		if err != nil {
			return a.errf("selp predicate: %v", err)
		}
		in.PSrc = p
		return a.srcs(in, ops[1:3], 0)

	case isa.OpLdG, isa.OpLdS:
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return a.errf("load destination: %v", err)
		}
		in.Dst = d
		addr, off, err := parseMem(ops[1])
		if err != nil {
			return a.errf("load address: %v", err)
		}
		in.Srcs[0], in.Off = addr, off
		return nil

	case isa.OpAtomAdd:
		if err := need(3); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return a.errf("atomic destination: %v", err)
		}
		in.Dst = d
		addr, off, err := parseMem(ops[1])
		if err != nil {
			return a.errf("atomic address: %v", err)
		}
		in.Srcs[0], in.Off = addr, off
		src, err := a.parseOperand(ops[2])
		if err != nil {
			return err
		}
		in.Srcs[1] = src
		return nil

	case isa.OpStG, isa.OpStS:
		if err := need(2); err != nil {
			return err
		}
		addr, off, err := parseMem(ops[0])
		if err != nil {
			return a.errf("store address: %v", err)
		}
		in.Srcs[0], in.Off = addr, off
		src, err := a.parseOperand(ops[1])
		if err != nil {
			return err
		}
		in.Srcs[1] = src
		return nil

	default:
		// Register-destination ALU form: dst, src0 [, src1 [, src2]].
		nsrc := aluSrcCount(in.Op)
		if err := need(1 + nsrc); err != nil {
			return err
		}
		d, err := parseReg(ops[0])
		if err != nil {
			return a.errf("destination: %v", err)
		}
		in.Dst = d
		return a.srcs(in, ops[1:], 0)
	}
}

func (a *assembler) srcs(in *isa.Instr, ops []string, base int) error {
	if len(ops) > 3-base {
		return a.errf("too many source operands")
	}
	for i, o := range ops {
		src, err := a.parseOperand(o)
		if err != nil {
			return err
		}
		in.Srcs[base+i] = src
	}
	return nil
}

func (a *assembler) parseOperand(s string) (isa.Operand, error) {
	if strings.HasPrefix(s, "%") {
		sp, ok := isa.SpecialByName(s)
		if !ok {
			return isa.Operand{}, a.errf("unknown special register %q", s)
		}
		return isa.Spec(sp), nil
	}
	if strings.HasPrefix(s, "r") {
		if r, err := parseReg(s); err == nil {
			return isa.R(r), nil
		}
	}
	v, err := parseImm(s)
	if err != nil {
		return isa.Operand{}, a.errf("bad operand %q", s)
	}
	return isa.Imm(v), nil
}

// aluSrcCount gives the source-operand arity of a plain ALU opcode.
func aluSrcCount(op isa.Opcode) int {
	switch op {
	case isa.OpMov, isa.OpNot, isa.OpAbs, isa.OpFRcp, isa.OpFSqrt, isa.OpI2F, isa.OpF2I:
		return 1
	case isa.OpMad, isa.OpFMA:
		return 3
	default:
		return 2
	}
}

func parseReg(s string) (isa.Reg, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.MaxRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

func parsePred(s string) (isa.PredReg, error) {
	if len(s) < 2 || s[0] != 'p' {
		return 0, fmt.Errorf("expected predicate, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= isa.MaxPreds {
		return 0, fmt.Errorf("bad predicate %q", s)
	}
	return isa.PredReg(n), nil
}

// parseMem parses "[rN]", "[rN+imm]", "[rN-imm]" or "[imm]".
func parseMem(s string) (isa.Operand, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return isa.Operand{}, 0, fmt.Errorf("expected [addr], got %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	// Find a +/- separator after the first character (so "-4" stays one token).
	sep := -1
	for i := 1; i < len(inner); i++ {
		if inner[i] == '+' || inner[i] == '-' {
			sep = i
			break
		}
	}
	base, offStr := inner, ""
	if sep > 0 {
		base = strings.TrimSpace(inner[:sep])
		offStr = strings.TrimSpace(inner[sep:]) // keeps sign
	}
	var off int32
	if offStr != "" {
		v, err := parseImm(offStr)
		if err != nil {
			return isa.Operand{}, 0, fmt.Errorf("bad offset %q", offStr)
		}
		off = v
	}
	if strings.HasPrefix(base, "r") {
		r, err := parseReg(base)
		if err != nil {
			return isa.Operand{}, 0, err
		}
		return isa.R(r), off, nil
	}
	v, err := parseImm(base)
	if err != nil {
		return isa.Operand{}, 0, fmt.Errorf("bad address base %q", base)
	}
	return isa.Imm(v), off, nil
}

// parseImm accepts decimal and hex integers, and single-precision float
// literals (containing '.' or an exponent) whose bit pattern is stored.
func parseImm(s string) (int32, error) {
	if strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x") && !strings.HasPrefix(s, "-0x") {
		f, err := strconv.ParseFloat(s, 32)
		if err != nil {
			return 0, err
		}
		return int32(math.Float32bits(float32(f))), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxUint32 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// splitOperands splits on commas not inside brackets.
func splitOperands(s string) ([]string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced ']'")
			}
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced '['")
	}
	out = append(out, strings.TrimSpace(s[start:]))
	for _, o := range out {
		if o == "" {
			return nil, fmt.Errorf("empty operand")
		}
	}
	return out, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

package asm

import (
	"math"
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestBasicProgram(t *testing.T) {
	k, err := Assemble("t", `
.kernel demo
.shared 128
	mov  r0, %tid.x
	add  r1, r0, 5
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "demo" {
		t.Errorf("name %q", k.Name)
	}
	if k.SharedBytes != 128 {
		t.Errorf("shared %d", k.SharedBytes)
	}
	if len(k.Code) != 3 {
		t.Fatalf("%d instructions", len(k.Code))
	}
	if k.NumRegs != 2 {
		t.Errorf("NumRegs %d, want 2", k.NumRegs)
	}
	in := k.Code[0]
	if in.Op != isa.OpMov || in.Dst != 0 || in.Srcs[0].Kind != isa.OperandSpecial || in.Srcs[0].Spec != isa.SpecTidX {
		t.Errorf("mov decoded wrong: %+v", in)
	}
	in = k.Code[1]
	if in.Op != isa.OpAdd || in.Srcs[1].Kind != isa.OperandImm || in.Srcs[1].Imm != 5 {
		t.Errorf("add decoded wrong: %+v", in)
	}
}

func TestLabelsAndBranches(t *testing.T) {
	k, err := Assemble("t", `
	mov r0, 0
Ltop:
	add r0, r0, 1
	setp.lt p0, r0, 10
@p0	bra Ltop
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	bra := k.Code[3]
	if bra.Op != isa.OpBra || bra.Target != 1 {
		t.Fatalf("branch target %d, want 1", bra.Target)
	}
	if bra.Pred != 0 || bra.PredNeg {
		t.Fatalf("guard wrong: %+v", bra)
	}
}

func TestNegatedGuard(t *testing.T) {
	k, err := Assemble("t", `
	setp.eq p2, r0, r1
@!p2	add r2, r2, 1
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Code[1]
	if in.Pred != 2 || !in.PredNeg {
		t.Fatalf("negated guard: %+v", in)
	}
}

func TestMemoryOperands(t *testing.T) {
	k, err := Assemble("t", `
	ld.global r1, [r2]
	ld.global r3, [r4+16]
	ld.shared r5, [r6-4]
	st.global [r7+8], r1
	st.shared [32], 99
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if k.Code[0].Off != 0 || k.Code[1].Off != 16 || k.Code[2].Off != -4 || k.Code[3].Off != 8 {
		t.Fatalf("offsets wrong: %d %d %d %d", k.Code[0].Off, k.Code[1].Off, k.Code[2].Off, k.Code[3].Off)
	}
	st := k.Code[4]
	if st.Srcs[0].Kind != isa.OperandImm || st.Srcs[0].Imm != 32 {
		t.Fatalf("immediate address: %+v", st.Srcs[0])
	}
	if st.Srcs[1].Kind != isa.OperandImm || st.Srcs[1].Imm != 99 {
		t.Fatalf("immediate store data: %+v", st.Srcs[1])
	}
}

func TestFloatImmediates(t *testing.T) {
	k, err := Assemble("t", `
	fmul r1, r0, 0.25
	fadd r2, r1, 1.0
	fadd r3, r2, 1e-3
	mov  r4, -2.5
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{0.25, 1.0, 1e-3, -2.5}
	idx := [][2]int{{0, 1}, {1, 1}, {2, 1}, {3, 0}}
	for i, w := range want {
		imm := k.Code[idx[i][0]].Srcs[idx[i][1]]
		if got := math.Float32frombits(uint32(imm.Imm)); got != w {
			t.Errorf("imm %d = %v, want %v", i, got, w)
		}
	}
}

func TestHexAndNegativeImmediates(t *testing.T) {
	k, err := Assemble("t", `
	mov r0, 0x7f7fffff
	mov r1, -1
	and r2, r0, 0xFF
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if uint32(k.Code[0].Srcs[0].Imm) != 0x7f7fffff {
		t.Error("hex immediate")
	}
	if k.Code[1].Srcs[0].Imm != -1 {
		t.Error("negative immediate")
	}
}

func TestSelpAndSetp(t *testing.T) {
	k, err := Assemble("t", `
	setp.flt p1, r0, r1
	selp r2, r3, r4, p1
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if k.Code[0].Cmp != isa.CmpFLT || k.Code[0].PDst != 1 {
		t.Fatalf("setp: %+v", k.Code[0])
	}
	sel := k.Code[1]
	if sel.Op != isa.OpSelP || sel.PSrc != 1 || sel.Dst != 2 {
		t.Fatalf("selp: %+v", sel)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	k, err := Assemble("t", `
	// full line comment
	# another
	; and another
	mov r0, 1   // trailing
	exit        # trailing
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Code) != 2 {
		t.Fatalf("%d instructions, want 2", len(k.Code))
	}
}

func TestErrorCases(t *testing.T) {
	cases := map[string]string{
		"undefined label":   "\tbra Lmissing\n\texit\n",
		"unknown mnemonic":  "\tfrobnicate r0, r1\n\texit\n",
		"bad register":      "\tmov r99, 0\n\texit\n",
		"bad predicate":     "\tsetp.lt p9, r0, r1\n\texit\n",
		"wrong arity":       "\tadd r0, r1\n\texit\n",
		"duplicate label":   "L: nop\nL: exit\n",
		"unknown directive": ".frob 3\n\texit\n",
		"no exit":           "\tmov r0, 1\n",
		"unknown special":   "\tmov r0, %bogus\n\texit\n",
		"unknown cmp":       "\tsetp.weird p0, r0, r1\n\texit\n",
		"unbalanced mem":    "\tld.global r0, [r1\n\texit\n",
		"guard alone":       "@p0\n\texit\n",
	}
	for name, src := range cases {
		if _, err := Assemble("t", src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestErrorIncludesLine(t *testing.T) {
	_, err := Assemble("t", "\tnop\n\tbogus r1\n\texit\n")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error should name line 2: %v", err)
	}
}

func TestMultipleLabelsSamePC(t *testing.T) {
	k, err := Assemble("t", `
	mov r0, 0
A: B:
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(k.Code) != 2 {
		t.Fatalf("%d instructions", len(k.Code))
	}
}

func TestLabelOnInstructionLine(t *testing.T) {
	k, err := Assemble("t", `
	bra Lend
Lend: exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if k.Code[0].Target != 1 {
		t.Fatalf("target %d", k.Code[0].Target)
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("t", "bogus")
}

// TestRoundTripThroughString: every assembled instruction must render via
// String() without panicking (guards doc examples and debugging output).
func TestRoundTripThroughString(t *testing.T) {
	k := MustAssemble("t", `
	mov r0, %ctaid.x
	mad r1, r0, %ntid.x, r2
	setp.ge p0, r1, 100
@p0	exit
	fma r3, r1, 0.5, r4
	ld.global r5, [r6+4]
	st.shared [r7], r5
	bar.sync
	min r8, r5, r3
	bra Ldone
Ldone:
	exit
`)
	for i := range k.Code {
		if s := k.Code[i].String(); s == "" {
			t.Fatalf("empty rendering at pc %d", i)
		}
	}
}

func TestParamSpecials(t *testing.T) {
	k, err := Assemble("t", `
	mov r0, %param0
	add r1, r0, %param7
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	if k.Code[0].Srcs[0].Spec != isa.SpecParam0 {
		t.Error("param0 decode")
	}
	if k.Code[1].Srcs[1].Spec != isa.SpecParam7 {
		t.Error("param7 decode")
	}
}

func TestAtomicAddSyntax(t *testing.T) {
	k, err := Assemble("t", `
	atom.add r1, [r2], 1
	atom.add r3, [r4+8], r5
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	a0 := k.Code[0]
	if a0.Op != isa.OpAtomAdd || a0.Dst != 1 || a0.Srcs[0].Reg != 2 || a0.Srcs[1].Imm != 1 {
		t.Fatalf("atom.add decode: %+v", a0)
	}
	a1 := k.Code[1]
	if a1.Off != 8 || a1.Srcs[1].Kind != isa.OperandReg || a1.Srcs[1].Reg != 5 {
		t.Fatalf("atom.add with offset: %+v", a1)
	}
	if _, err := Assemble("t", "\tatom.add r1, [r2]\n\texit\n"); err == nil {
		t.Fatal("atom.add with missing addend accepted")
	}
}

// Package prof wires the runtime/pprof CPU and heap profilers into the
// command-line tools: one call after flag parsing starts the requested
// profiles, and the returned stop function flushes them on the way out.
//
// The profiles are the entry point of the performance workflow documented in
// DESIGN.md §12: capture with -cpuprofile/-memprofile, inspect with
// `go tool pprof`.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU and/or heap profiling. Either path may be empty to skip
// that profile. The returned stop function is always non-nil and safe to
// call once; it stops the CPU profile and writes the heap profile (after a
// GC, so the snapshot shows live memory rather than collection timing).
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start CPU profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: close CPU profile: %w", err)
			}
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
			memPath = ""
		}
		return nil
	}, nil
}

// Package stats collects the simulation counters from which every figure of
// the paper is derived.
package stats

import "repro/internal/regfile"

// Phase indexes the two execution phases the paper separates everywhere:
// non-divergent (active mask == warp launch mask) and divergent.
type Phase int

const (
	NonDivergent Phase = iota
	Divergent
	NumPhases
)

func (p Phase) String() string {
	if p == NonDivergent {
		return "non-divergent"
	}
	return "divergent"
}

// Bin is the value-similarity category of a register write (paper Fig 2):
// the smallest bin containing every successive-lane arithmetic distance.
type Bin int

const (
	BinZero   Bin = iota // all successive lanes identical
	Bin128               // |distance| <= 128
	Bin32K               // |distance| <= 2^15
	BinRandom            // anything larger
	NumBins
)

func (b Bin) String() string {
	switch b {
	case BinZero:
		return "zero"
	case Bin128:
		return "128"
	case Bin32K:
		return "32K"
	}
	return "random"
}

// NumEncodings mirrors core's encoding count (uncompressed, <4,0>, <4,1>,
// <4,2>) without importing it, to keep stats dependency-light.
const NumEncodings = 4

// NumExplorerChoices is len(core.ExplorerParams)+1: the 7 full-BDI parameter
// pairs of Fig 5 plus "uncompressed".
const NumExplorerChoices = 8

// Stats aggregates one SM's (or, after Add, one GPU's) counters.
type Stats struct {
	Cycles uint64

	// Instruction accounting.
	Instructions    uint64 // warp instructions issued (excluding dummy MOVs)
	DivergentInstrs uint64 // issued with a partial active mask
	DummyMovs       uint64 // injected decompress-MOVs (paper §5.2, Fig 11)

	// Register-write characterization (Figs 2 and 5), by phase.
	WriteBins  [NumPhases][NumBins]uint64
	BDIChoices [NumExplorerChoices]uint64 // full-BDI best choice per write

	// Compression results by phase (Figs 8, 12, 15). Sizes are counted in
	// 16-byte register banks, the paper's storage granularity (so the
	// best-case <4,0> ratio is 8, not 32).
	RegWrites      [NumPhases]uint64
	WriteOrigBanks [NumPhases]uint64
	WriteCompBanks [NumPhases]uint64
	WritesByEnc    [NumPhases][NumEncodings]uint64

	// Fig 12 census: running sums of compressed/written snapshots taken at
	// writes in each phase.
	CensusSamples    [NumPhases]uint64
	CensusCompressed [NumPhases]float64

	// Register file and compression hardware events.
	RF         regfile.Stats
	CompActs   uint64
	DecompActs uint64

	// Register file cache comparator events (abl4-rfc).
	RFCReads      uint64 // operand reads served by the RFC
	RFCReadMisses uint64 // operand reads that fell through to the banks
	RFCWrites     uint64 // results written into the RFC
	RFCEvictions  uint64 // dirty evictions written back to the main banks

	// Memory system.
	GlobalTxns   uint64
	SharedAccess uint64
	L1Hits       uint64
	L1Misses     uint64

	// Shared-memory bank model (32 banks x 4 B, mem.AnalyzeShared).
	// SharedAccess above counts warp-level shared instructions; these break
	// them down at bank granularity.
	SharedBankAccesses        uint64 // distinct words fetched — bank row activations
	SharedConflicts           uint64 // warp accesses that needed more than one phase
	SharedSerializationCycles uint64 // extra phases beyond the first, summed
	SharedBroadcastHits       uint64 // lane requests served by another lane's fetch

	// Structural stall diagnostics (useful for latency-sweep analysis).
	StallScoreboard uint64
	StallCollector  uint64
	StallCompressor uint64
	StallWakeup     uint64

	// Fault-injection events (internal/faults). Stuck writes are register
	// writes that touched at least one stuck-at bank; corrupted lanes count
	// the individual lanes XORed by stuck patterns; transient flips count
	// soft-error single-bit upsets applied at write-back.
	FaultStuckWrites    uint64
	FaultCorruptedLanes uint64
	FaultTransientFlips uint64
}

// Add merges another Stats (e.g. a second SM) into s. Cycles takes the max
// since SMs run concurrently; everything else sums.
func (s *Stats) Add(o *Stats) {
	if o.Cycles > s.Cycles {
		s.Cycles = o.Cycles
	}
	s.Instructions += o.Instructions
	s.DivergentInstrs += o.DivergentInstrs
	s.DummyMovs += o.DummyMovs
	for p := Phase(0); p < NumPhases; p++ {
		for b := Bin(0); b < NumBins; b++ {
			s.WriteBins[p][b] += o.WriteBins[p][b]
		}
		s.RegWrites[p] += o.RegWrites[p]
		s.WriteOrigBanks[p] += o.WriteOrigBanks[p]
		s.WriteCompBanks[p] += o.WriteCompBanks[p]
		for e := 0; e < NumEncodings; e++ {
			s.WritesByEnc[p][e] += o.WritesByEnc[p][e]
		}
		s.CensusSamples[p] += o.CensusSamples[p]
		s.CensusCompressed[p] += o.CensusCompressed[p]
	}
	for i := 0; i < NumExplorerChoices; i++ {
		s.BDIChoices[i] += o.BDIChoices[i]
	}
	s.RF.BankReads += o.RF.BankReads
	s.RF.BankWrites += o.RF.BankWrites
	for i := 0; i < regfile.NumBanks; i++ {
		s.RF.PerBankReads[i] += o.RF.PerBankReads[i]
		s.RF.PerBankWrites[i] += o.RF.PerBankWrites[i]
		s.RF.PerBankGatedCycles[i] += o.RF.PerBankGatedCycles[i]
	}
	s.RF.PoweredBankCycles += o.RF.PoweredBankCycles
	s.RF.DrowsyBankCycles += o.RF.DrowsyBankCycles
	s.RF.Cycles += o.RF.Cycles
	s.RF.ReadBeforeWrite += o.RF.ReadBeforeWrite
	s.RF.RedirectedWrites += o.RF.RedirectedWrites
	s.CompActs += o.CompActs
	s.DecompActs += o.DecompActs
	s.RFCReads += o.RFCReads
	s.RFCReadMisses += o.RFCReadMisses
	s.RFCWrites += o.RFCWrites
	s.RFCEvictions += o.RFCEvictions
	s.GlobalTxns += o.GlobalTxns
	s.SharedAccess += o.SharedAccess
	s.L1Hits += o.L1Hits
	s.L1Misses += o.L1Misses
	s.SharedBankAccesses += o.SharedBankAccesses
	s.SharedConflicts += o.SharedConflicts
	s.SharedSerializationCycles += o.SharedSerializationCycles
	s.SharedBroadcastHits += o.SharedBroadcastHits
	s.StallScoreboard += o.StallScoreboard
	s.StallCollector += o.StallCollector
	s.StallCompressor += o.StallCompressor
	s.StallWakeup += o.StallWakeup
	s.FaultStuckWrites += o.FaultStuckWrites
	s.FaultCorruptedLanes += o.FaultCorruptedLanes
	s.FaultTransientFlips += o.FaultTransientFlips
}

// NonDivergentRatio is Fig 3: the fraction of warp instructions executed
// with a full active mask.
func (s *Stats) NonDivergentRatio() float64 {
	if s.Instructions == 0 {
		return 1
	}
	return 1 - float64(s.DivergentInstrs)/float64(s.Instructions)
}

// CompressionRatio is Fig 8 for one phase: original register banks divided
// by the banks the achievable encoding needs, over all register writes in
// that phase.
func (s *Stats) CompressionRatio(p Phase) float64 {
	if s.WriteCompBanks[p] == 0 {
		return 1
	}
	return float64(s.WriteOrigBanks[p]) / float64(s.WriteCompBanks[p])
}

// DummyMovRatio is Fig 11: dummy MOVs as a fraction of all instructions
// (real + injected).
func (s *Stats) DummyMovRatio() float64 {
	total := s.Instructions + s.DummyMovs
	if total == 0 {
		return 0
	}
	return float64(s.DummyMovs) / float64(total)
}

// CompressedRegFraction is Fig 12 for one phase: average fraction of written
// registers in compressed state, sampled at writes in that phase.
func (s *Stats) CompressedRegFraction(p Phase) (float64, bool) {
	if s.CensusSamples[p] == 0 {
		return 0, false
	}
	return s.CensusCompressed[p] / float64(s.CensusSamples[p]), true
}

// WriteBinFractions returns the Fig 2 bin shares for one phase (sums to 1
// when any writes happened).
func (s *Stats) WriteBinFractions(p Phase) [NumBins]float64 {
	var out [NumBins]float64
	var total uint64
	for _, c := range s.WriteBins[p] {
		total += c
	}
	if total == 0 {
		return out
	}
	for i, c := range s.WriteBins[p] {
		out[i] = float64(c) / float64(total)
	}
	return out
}

package stats

import (
	"math"
	"testing"
)

func TestNonDivergentRatio(t *testing.T) {
	s := &Stats{Instructions: 100, DivergentInstrs: 21}
	if got := s.NonDivergentRatio(); got != 0.79 {
		t.Fatalf("ratio %v, want 0.79", got)
	}
	empty := &Stats{}
	if empty.NonDivergentRatio() != 1 {
		t.Fatal("empty run should report fully convergent")
	}
}

func TestCompressionRatio(t *testing.T) {
	s := &Stats{}
	s.WriteOrigBanks[NonDivergent] = 800
	s.WriteCompBanks[NonDivergent] = 320
	if got := s.CompressionRatio(NonDivergent); got != 2.5 {
		t.Fatalf("ratio %v, want 2.5", got)
	}
	if got := s.CompressionRatio(Divergent); got != 1 {
		t.Fatal("no divergent writes should report ratio 1")
	}
}

func TestDummyMovRatio(t *testing.T) {
	s := &Stats{Instructions: 98, DummyMovs: 2}
	if got := s.DummyMovRatio(); got != 0.02 {
		t.Fatalf("ratio %v, want 0.02", got)
	}
	if (&Stats{}).DummyMovRatio() != 0 {
		t.Fatal("empty run ratio")
	}
}

func TestCensus(t *testing.T) {
	s := &Stats{}
	s.CensusSamples[Divergent] = 4
	s.CensusCompressed[Divergent] = 2.0
	v, ok := s.CompressedRegFraction(Divergent)
	if !ok || v != 0.5 {
		t.Fatalf("census %v %v", v, ok)
	}
	if _, ok := s.CompressedRegFraction(NonDivergent); ok {
		t.Fatal("no samples should report not-ok")
	}
}

func TestWriteBinFractions(t *testing.T) {
	s := &Stats{}
	s.WriteBins[NonDivergent] = [NumBins]uint64{10, 20, 30, 40}
	f := s.WriteBinFractions(NonDivergent)
	if f[0] != 0.1 || f[3] != 0.4 {
		t.Fatalf("fractions %v", f)
	}
	sum := 0.0
	for _, v := range f {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
	zero := s.WriteBinFractions(Divergent)
	for _, v := range zero {
		if v != 0 {
			t.Fatal("empty phase should be all zeros")
		}
	}
}

func TestAddMerges(t *testing.T) {
	a := &Stats{Cycles: 100, Instructions: 10, DummyMovs: 1}
	a.WriteBins[Divergent][BinZero] = 3
	a.RF.PerBankReads[5] = 7
	a.CensusSamples[NonDivergent] = 2
	a.CensusCompressed[NonDivergent] = 1.0

	b := &Stats{Cycles: 90, Instructions: 5, DivergentInstrs: 2}
	b.WriteBins[Divergent][BinZero] = 4
	b.RF.PerBankReads[5] = 3
	b.BDIChoices[2] = 9
	b.StallWakeup = 11

	a.Add(b)
	if a.Cycles != 100 {
		t.Fatalf("cycles take max: %d", a.Cycles)
	}
	if a.Instructions != 15 || a.DivergentInstrs != 2 || a.DummyMovs != 1 {
		t.Fatal("instruction sums")
	}
	if a.WriteBins[Divergent][BinZero] != 7 {
		t.Fatal("bin sums")
	}
	if a.RF.PerBankReads[5] != 10 {
		t.Fatal("per-bank sums")
	}
	if a.BDIChoices[2] != 9 || a.StallWakeup != 11 {
		t.Fatal("choice/stall sums")
	}
}

func TestStringers(t *testing.T) {
	if NonDivergent.String() != "non-divergent" || Divergent.String() != "divergent" {
		t.Fatal("phase names")
	}
	names := map[Bin]string{BinZero: "zero", Bin128: "128", Bin32K: "32K", BinRandom: "random"}
	for b, want := range names {
		if b.String() != want {
			t.Fatalf("bin %d name %q", b, b.String())
		}
	}
}

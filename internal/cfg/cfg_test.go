package cfg

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
)

func reconv(t *testing.T, src string) []int32 {
	t.Helper()
	k, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ComputeReconvergence(k); err != nil {
		t.Fatal(err)
	}
	return k.ReconvPC
}

// pcOfLabel finds the pc a label resolves to by assembling with a branch.
func TestIfThenElse(t *testing.T) {
	// 0 setp, 1 @p0 bra Lelse(4), 2 add, 3 bra Lend(5), 4 Lelse: sub, 5 Lend: exit
	r := reconv(t, `
	setp.lt p0, r0, r1
@p0	bra Lelse
	add r2, r2, 1
	bra Lend
Lelse:
	sub r2, r2, 1
Lend:
	exit
`)
	if r[1] != 5 {
		t.Fatalf("if/else branch reconverges at %d, want 5 (Lend)", r[1])
	}
	if r[3] != -1 {
		t.Fatalf("unconditional bra should have no reconvergence point, got %d", r[3])
	}
}

func TestIfWithoutElse(t *testing.T) {
	// 0 setp, 1 @p0 bra Lend(3), 2 add, 3 exit
	r := reconv(t, `
	setp.lt p0, r0, r1
@p0	bra Lend
	add r2, r2, 1
Lend:
	exit
`)
	if r[1] != 3 {
		t.Fatalf("if branch reconverges at %d, want 3", r[1])
	}
}

func TestLoopBackEdge(t *testing.T) {
	// 0 mov, 1 Ltop: add, 2 setp, 3 @p0 bra Ltop(1), 4 exit
	r := reconv(t, `
	mov r0, 0
Ltop:
	add r0, r0, 1
	setp.lt p0, r0, 10
@p0	bra Ltop
	exit
`)
	if r[3] != 4 {
		t.Fatalf("loop back-edge reconverges at %d, want 4 (loop exit)", r[3])
	}
}

func TestNestedIf(t *testing.T) {
	// outer branch at 1 -> Louter(8); inner branch at 3 -> Linner(6)
	r := reconv(t, `
	setp.lt p0, r0, r1
@p0	bra Louter
	setp.lt p1, r2, r3
@p1	bra Linner
	add r4, r4, 1
	add r4, r4, 2
Linner:
	add r4, r4, 3
Louter:
	exit
`)
	if r[3] != 6 {
		t.Fatalf("inner reconvergence %d, want 6", r[3])
	}
	if r[1] != 7 {
		t.Fatalf("outer reconvergence %d, want 7 (Louter)", r[1])
	}
}

func TestGuardedExitReconvergence(t *testing.T) {
	// 0 setp, 1 @p0 exit, 2 add, 3 exit: a guarded exit retires its lanes
	// directly (no stack entry), so it carries no reconvergence PC.
	r := reconv(t, `
	setp.lt p0, r0, r1
@p0	exit
	add r2, r2, 1
	exit
`)
	if r[1] != -1 {
		t.Fatalf("guarded exit should have no reconvergence PC, got %d", r[1])
	}
}

func TestDivergeToExitOnly(t *testing.T) {
	// Both sides exit separately: reconvergence only at kernel exit (-1).
	r := reconv(t, `
	setp.lt p0, r0, r1
@p0	bra Lother
	exit
Lother:
	exit
`)
	if r[1] != -1 {
		t.Fatalf("exit-only reconvergence should be -1, got %d", r[1])
	}
}

func TestFallOffEndRejected(t *testing.T) {
	k := &isa.Kernel{
		Name: "bad",
		Code: []isa.Instr{
			{Op: isa.OpExit, Dst: isa.RegNone, Pred: isa.PredNone, PDst: isa.PredNone, PSrc: isa.PredNone},
			{Op: isa.OpNop, Dst: isa.RegNone, Pred: isa.PredNone, PDst: isa.PredNone, PSrc: isa.PredNone},
		},
	}
	if _, err := Build(k); err == nil {
		t.Fatal("control falling off code end must be rejected")
	}
}

func TestBlockPartition(t *testing.T) {
	k, err := asm.Assemble("t", `
	mov r0, 0
	setp.lt p0, r0, r1
@p0	bra Lskip
	add r0, r0, 1
Lskip:
	exit
`)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 3 {
		t.Fatalf("%d blocks, want 3", len(g.Blocks))
	}
	if g.BlockOf(0) != 0 || g.BlockOf(3) != 1 || g.BlockOf(4) != 2 {
		t.Fatalf("block mapping wrong: %d %d %d", g.BlockOf(0), g.BlockOf(3), g.BlockOf(4))
	}
}

func TestUnreachableCode(t *testing.T) {
	// Code after an unconditional exit is unreachable from the entry, but
	// post-dominance is still well-defined for it (it reaches exit), so the
	// analysis must not crash and the dead branch still gets its join point.
	r := reconv(t, `
	exit
	setp.lt p0, r0, r1
@p0	bra Ldead
	nop
Ldead:
	exit
`)
	if r[2] != 4 {
		t.Fatalf("dead branch reconvergence %d, want 4 (Ldead)", r[2])
	}
}

// TestWhileLoopWithDivergentExit mirrors the benchmark kernels' trip-count
// loops: the back-edge branch must reconverge right after the loop.
func TestWhileLoopWithDivergentExit(t *testing.T) {
	r := reconv(t, `
	mov  r4, 0
	mov  r5, 0
Lloop:
	add  r4, r4, 10
	add  r5, r5, 1
	setp.lt p0, r5, r2
@p0	bra Lloop
	st.global [r6], r4
	exit
`)
	if r[5] != 6 {
		t.Fatalf("loop reconvergence %d, want 6 (the store)", r[5])
	}
}

// Package cfg builds control-flow graphs over kernel code and computes
// immediate post-dominators.
//
// The SIMT execution model reconverges divergent warps at the immediate
// post-dominator of the diverging branch (the mechanism used by GPGPU-Sim and
// described in the warped-compression paper's baseline). Rather than require
// explicit SSY/JOIN markers in the assembly, this package derives the
// reconvergence PC of every branch from the kernel's CFG at load time.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/isa"
)

// Block is one basic block: instructions [Start, End) with CFG successors.
type Block struct {
	Start, End int
	// Succs are successor block indices; ExitNode denotes kernel exit.
	Succs []int
}

// Graph is the CFG of a kernel plus its post-dominator tree.
type Graph struct {
	Blocks []Block
	// blockOf maps each pc to its block index.
	blockOf []int
	// ipdom[b] is the immediate post-dominator block of b; ExitNode when
	// the block post-dominates straight to exit, -1 for unreachable blocks.
	ipdom []int
}

// ExitNode is the virtual block index representing kernel termination.
const ExitNode = -2

// Build constructs the CFG of a kernel and computes post-dominators.
func Build(k *isa.Kernel) (*Graph, error) {
	n := len(k.Code)
	if n == 0 {
		return nil, fmt.Errorf("cfg: empty kernel %s", k.Name)
	}

	// Find leaders: entry, branch targets, instruction after any terminator.
	leader := make([]bool, n)
	leader[0] = true
	for pc, in := range k.Code {
		switch in.Op {
		case isa.OpBra:
			if int(in.Target) < n {
				leader[in.Target] = true
			}
			if pc+1 < n {
				leader[pc+1] = true
			}
		case isa.OpExit:
			if pc+1 < n {
				leader[pc+1] = true
			}
		}
	}

	g := &Graph{blockOf: make([]int, n)}
	for pc := 0; pc < n; pc++ {
		if leader[pc] {
			g.Blocks = append(g.Blocks, Block{Start: pc})
		}
		g.blockOf[pc] = len(g.Blocks) - 1
	}
	for i := range g.Blocks {
		if i+1 < len(g.Blocks) {
			g.Blocks[i].End = g.Blocks[i+1].Start
		} else {
			g.Blocks[i].End = n
		}
	}

	// Successors from each block's terminating instruction.
	for i := range g.Blocks {
		b := &g.Blocks[i]
		last := &k.Code[b.End-1]
		switch last.Op {
		case isa.OpBra:
			b.Succs = append(b.Succs, g.blockOf[last.Target])
			if last.Pred != isa.PredNone { // conditional: fallthrough too
				if b.End >= n {
					return nil, fmt.Errorf("cfg: kernel %s: conditional branch at pc %d falls off code end", k.Name, b.End-1)
				}
				b.Succs = append(b.Succs, g.blockOf[b.End])
			}
		case isa.OpExit:
			b.Succs = append(b.Succs, ExitNode)
			if last.Pred != isa.PredNone { // thread-exit: others fall through
				if b.End >= n {
					return nil, fmt.Errorf("cfg: kernel %s: guarded exit at pc %d falls off code end", k.Name, b.End-1)
				}
				b.Succs = append(b.Succs, g.blockOf[b.End])
			}
		default:
			if b.End >= n {
				return nil, fmt.Errorf("cfg: kernel %s: control falls off code end at pc %d", k.Name, b.End-1)
			}
			b.Succs = append(b.Succs, g.blockOf[b.End])
		}
	}

	g.computePostDoms()
	return g, nil
}

// computePostDoms runs the iterative dominator algorithm (Cooper-Harvey-
// Kennedy) on the reverse CFG rooted at the virtual exit node.
func (g *Graph) computePostDoms() {
	nb := len(g.Blocks)
	// preds on reverse graph == successors on forward graph; we need the
	// forward predecessors of each node when walking the reverse graph,
	// i.e. for post-dominance we process successors as "predecessors".
	// Represent exit as index nb in dense arrays.
	const unset = -1
	exit := nb
	succs := make([][]int, nb)
	for i, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == ExitNode {
				succs[i] = append(succs[i], exit)
			} else {
				succs[i] = append(succs[i], s)
			}
		}
	}

	// Reverse post-order of the reverse CFG: DFS from exit over reverse
	// edges. Build reverse edges (forward preds of each node).
	rev := make([][]int, nb+1)
	for i, ss := range succs {
		for _, s := range ss {
			rev[s] = append(rev[s], i)
		}
	}
	order := make([]int, 0, nb+1) // postorder of DFS from exit on rev edges
	seen := make([]bool, nb+1)
	var dfs func(int)
	dfs = func(u int) {
		seen[u] = true
		for _, v := range rev[u] {
			if !seen[v] {
				dfs(v)
			}
		}
		order = append(order, u)
	}
	dfs(exit)

	postIdx := make([]int, nb+1)
	for i := range postIdx {
		postIdx[i] = unset
	}
	for i, u := range order {
		postIdx[u] = i
	}

	idom := make([]int, nb+1)
	for i := range idom {
		idom[i] = unset
	}
	idom[exit] = exit

	intersect := func(a, b int) int {
		for a != b {
			for postIdx[a] < postIdx[b] {
				a = idom[a]
			}
			for postIdx[b] < postIdx[a] {
				b = idom[b]
			}
		}
		return a
	}

	// Process reachable nodes in reverse postorder (excluding exit).
	rpo := make([]int, len(order))
	copy(rpo, order)
	sort.Slice(rpo, func(i, j int) bool { return postIdx[rpo[i]] > postIdx[rpo[j]] })

	for changed := true; changed; {
		changed = false
		for _, u := range rpo {
			if u == exit {
				continue
			}
			newIdom := unset
			for _, s := range succs[u] { // reverse-graph predecessors
				if postIdx[s] == unset || idom[s] == unset {
					continue
				}
				if newIdom == unset {
					newIdom = s
				} else {
					newIdom = intersect(newIdom, s)
				}
			}
			if newIdom != unset && idom[u] != newIdom {
				idom[u] = newIdom
				changed = true
			}
		}
	}

	g.ipdom = make([]int, nb)
	for i := 0; i < nb; i++ {
		switch {
		case idom[i] == unset:
			g.ipdom[i] = -1 // unreachable
		case idom[i] == exit:
			g.ipdom[i] = ExitNode
		default:
			g.ipdom[i] = idom[i]
		}
	}
}

// IPDom returns the immediate post-dominator block index of block b
// (ExitNode for exit, -1 for unreachable blocks).
func (g *Graph) IPDom(b int) int { return g.ipdom[b] }

// BlockOf returns the block index containing pc.
func (g *Graph) BlockOf(pc int) int { return g.blockOf[pc] }

// ReconvPC returns the reconvergence PC for a branch at pc: the first
// instruction of the branch block's immediate post-dominator, or -1 when
// control only reconverges at kernel exit.
func (g *Graph) ReconvPC(pc int) int32 {
	ip := g.ipdom[g.blockOf[pc]]
	if ip < 0 {
		return -1
	}
	return int32(g.Blocks[ip].Start)
}

// ComputeReconvergence fills k.ReconvPC with the reconvergence point of
// every guarded branch (-1 elsewhere and for exit-reconverged branches).
// Unconditional branches never diverge and guarded exits retire lanes
// without a stack entry, so neither needs a reconvergence PC. Must be called
// once before a kernel is executed.
func ComputeReconvergence(k *isa.Kernel) error {
	g, err := Build(k)
	if err != nil {
		return err
	}
	k.ReconvPC = make([]int32, len(k.Code))
	for pc := range k.Code {
		k.ReconvPC[pc] = -1
		in := &k.Code[pc]
		if in.Op == isa.OpBra && in.Pred != isa.PredNone {
			k.ReconvPC[pc] = g.ReconvPC(pc)
		}
	}
	return nil
}

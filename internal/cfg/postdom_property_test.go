package cfg

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
)

// randomKernel builds a structurally valid random kernel: a mix of ALU ops,
// guarded forward/backward branches and guarded exits, terminated by exit.
// Every branch target is a valid pc.
func randomKernel(r *rand.Rand, n int) *isa.Kernel {
	k := &isa.Kernel{Name: "rand"}
	for pc := 0; pc < n; pc++ {
		var in isa.Instr
		in.Dst = isa.RegNone
		in.PDst = isa.PredNone
		in.Pred = isa.PredNone
		in.PSrc = isa.PredNone
		switch r.Intn(4) {
		case 0: // plain op
			in.Op = isa.OpAdd
			in.Dst = 1
			in.Srcs[0] = isa.R(1)
			in.Srcs[1] = isa.Imm(1)
		case 1: // guarded branch to a random target
			in.Op = isa.OpBra
			in.Pred = 0
			in.Target = int32(r.Intn(n + 1))
			if int(in.Target) == n {
				in.Target = int32(n) // will be fixed to the final exit below
			}
		case 2: // guarded exit
			in.Op = isa.OpExit
			in.Pred = 0
		default:
			in.Op = isa.OpNop
		}
		k.Code = append(k.Code, in)
	}
	// Terminate and fix stray branch targets to stay in range.
	k.Code = append(k.Code, isa.Instr{Op: isa.OpExit, Dst: isa.RegNone, Pred: isa.PredNone, PDst: isa.PredNone, PSrc: isa.PredNone})
	for pc := range k.Code {
		if k.Code[pc].Op == isa.OpBra && int(k.Code[pc].Target) >= len(k.Code) {
			k.Code[pc].Target = int32(len(k.Code) - 1)
		}
	}
	k.ComputeRegUsage()
	return k
}

// bruteForcePostDoms computes, for every block, the set of blocks that
// post-dominate it, by the classic dataflow PD(n) = {n} U intersect over
// successors' PD — the definition the fast Cooper-Harvey-Kennedy
// implementation must agree with. The virtual exit node is block index nb.
func bruteForcePostDoms(g *Graph) [][]bool {
	nb := len(g.Blocks)
	exit := nb
	full := func() []bool {
		s := make([]bool, nb+1)
		for i := range s {
			s[i] = true
		}
		return s
	}
	pd := make([][]bool, nb+1)
	for i := 0; i <= nb; i++ {
		pd[i] = full()
	}
	pd[exit] = make([]bool, nb+1)
	pd[exit][exit] = true

	changed := true
	for changed {
		changed = false
		for b := 0; b < nb; b++ {
			meet := full()
			any := false
			for _, s := range g.Blocks[b].Succs {
				si := s
				if s == ExitNode {
					si = exit
				}
				for i := range meet {
					meet[i] = meet[i] && pd[si][i]
				}
				any = true
			}
			if !any {
				meet = make([]bool, nb+1)
			}
			meet[b] = true
			for i := range meet {
				if meet[i] != pd[b][i] {
					pd[b] = meet
					changed = true
					break
				}
			}
		}
	}
	return pd
}

// TestIPDomAgainstBruteForce: on hundreds of random CFGs, the fast
// immediate-post-dominator must (a) be a strict post-dominator of its block
// and (b) be the *closest* one: every other strict post-dominator of the
// block must also post-dominate the ipdom.
func TestIPDomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(0xCF6))
	for trial := 0; trial < 400; trial++ {
		k := randomKernel(r, 3+r.Intn(12))
		g, err := Build(k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pd := bruteForcePostDoms(g)
		nb := len(g.Blocks)
		exit := nb
		for b := 0; b < nb; b++ {
			ip := g.IPDom(b)
			// Blocks that cannot reach exit have the full set in the
			// brute-force fixpoint; skip those (no meaningful ipdom).
			reachesExit := pd[b][exit]
			if !reachesExit {
				continue
			}
			ipi := ip
			if ip == ExitNode {
				ipi = exit
			}
			if ip == -1 {
				t.Fatalf("trial %d block %d: no ipdom despite reaching exit", trial, b)
			}
			if !pd[b][ipi] || ipi == b {
				t.Fatalf("trial %d block %d: ipdom %d is not a strict post-dominator", trial, b, ip)
			}
			// Closest: every other strict post-dominator of b must also
			// post-dominate ipi.
			for d := 0; d <= exit; d++ {
				if d == b || d == ipi || !pd[b][d] {
					continue
				}
				if !pd[ipi][d] {
					t.Fatalf("trial %d block %d: %d is a closer post-dominator than ipdom %d", trial, b, d, ip)
				}
			}
		}
	}
}

// warpedsim runs a single benchmark (or a kernel from an assembly file) on
// the simulated GPU and prints a run summary: cycles, divergence,
// compression and energy statistics.
//
// Usage:
//
//	warpedsim -bench pathfinder
//	warpedsim -bench bfs -compression off -scheduler lrr -scale large
//	warpedsim -asm kernel.s -grid 30 -block 256
//	warpedsim -bench srad -compare -parallel -timeout 5m
//	warpedsim -bench bfs -inject seed=42,stuck=2,redirect
//	warpedsim -mode record -bench bfs -trace bfs.trace
//	warpedsim -mode replay -trace bfs.trace -compression off
//
// -mode selects the run mode: execute (the default full simulation),
// record (execute once and persist the functional execution as a
// warped.trace/v1 file), or replay (re-time a recorded trace under this
// invocation's configuration — byte-identical to executing it). The old
// compression-mode values of -mode (off, warped, only40, only41, only42)
// are accepted as deprecated aliases for -compression.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"strings"

	"repro/internal/prof"
	"repro/internal/version"
	"repro/warped"
)

func main() {
	var (
		bench    = flag.String("bench", "", "benchmark name (one of the 20-workload suite)")
		list     = flag.Bool("list", false, "list available benchmarks and exit")
		asmFile  = flag.String("asm", "", "run a kernel from an assembly file instead of a benchmark")
		grid     = flag.Int("grid", 30, "grid size in CTAs (with -asm)")
		block    = flag.Int("block", 256, "CTA size in threads (with -asm)")
		scale    = flag.String("scale", "medium", "benchmark scale: small, medium, large")
		mode     = flag.String("mode", "execute", "run mode: execute, record, replay (compression-mode values are deprecated aliases for -compression)")
		comp     = flag.String("compression", "warped", "compression: off, warped, only40, only41, only42, or a registered scheme ("+schemeList()+")")
		traceOut = flag.String("trace", "", "trace file: output path with -mode record, input path with -mode replay")
		sched    = flag.String("scheduler", "gto", "warp scheduler: gto or lrr")
		sms      = flag.Int("sms", 15, "number of SMs")
		compLat  = flag.Int("complat", 2, "compression latency in cycles")
		decLat   = flag.Int("decomplat", 1, "decompression latency in cycles")
		compare  = flag.Bool("compare", false, "also run the no-compression baseline and report deltas")
		parallel = flag.Bool("parallel", false, "with -compare, simulate the baseline concurrently")
		smPar    = flag.Int("sm-parallel", 0, "shard the SM loop across this many goroutines (0 = one per CPU); results are byte-identical at every count")
		timeout  = flag.Duration("timeout", 0, "abort the simulation after this duration (0 = no limit)")
		jsonOut  = flag.Bool("json", false, "emit the run result as versioned JSON ("+warped.ResultSchema+") instead of the text summary")
		inject   = flag.String("inject", "", "inject register-file faults, e.g. seed=42,stuck=2,transient=100,redirect (stuck = stuck-at banks/SM, transient = bit flips per million writes, redirect = RRCD remapping)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		showVer  = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("warpedsim"))
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *list {
		for _, b := range warped.Benchmarks() {
			fmt.Printf("%-11s [%s] %s\n", b.Name, b.Suite, b.Description)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	runMode := "execute"
	compression := *comp
	switch *mode {
	case "execute", "record", "replay":
		runMode = *mode
	case "off", "warped", "bdi", "only40", "only41", "only42":
		// Pre-trace releases used -mode for the compression mode; honour
		// the old spelling but steer callers to the canonical -compression
		// scheme name ("warped" is the bdi scheme's dynamic policy).
		canonical := *mode
		if canonical == "warped" {
			canonical = warped.DefaultCompressionScheme
		}
		fmt.Fprintf(os.Stderr, "warpedsim: -mode %s is deprecated; use -compression %s\n", *mode, canonical)
		compression = canonical
	default:
		if warped.CompressionSchemeRegistered(*mode) {
			// Registered scheme names route through the registry too.
			fmt.Fprintf(os.Stderr, "warpedsim: -mode %s is deprecated; use -compression %s\n", *mode, *mode)
			compression = *mode
			break
		}
		fatal("unknown mode %q (execute, record, replay; compression moved to -compression)", *mode)
	}

	cfg := warped.DefaultConfig()
	cfg.NumSMs = *sms
	cfg.SMParallel = *smPar
	cfg.Scheduler = *sched
	cfg.CompressLatency = *compLat
	cfg.DecompressLatency = *decLat
	if err := cfg.ApplyCompression(compression); err != nil {
		fatal("%v", err)
	}
	if *inject != "" {
		fc, err := warped.ParseFaultSpec(*inject)
		if err != nil {
			fatal("-inject: %v", err)
		}
		cfg.Faults = fc
	}
	if err := cfg.Validate(); err != nil {
		fatal("%v", err)
	}

	var sc warped.Scale
	switch *scale {
	case "small":
		sc = warped.Small
	case "medium":
		sc = warped.Medium
	case "large":
		sc = warped.Large
	default:
		fatal("unknown scale %q", *scale)
	}

	if runMode != "execute" {
		if *traceOut == "" {
			fatal("-mode %s requires -trace <file>", runMode)
		}
		if *compare {
			fatal("-compare is not supported with -mode %s", runMode)
		}
	}
	if runMode == "replay" {
		if *bench != "" || *asmFile != "" {
			fatal("-mode replay takes its kernel from the trace; drop -bench/-asm")
		}
		replayTrace(ctx, cfg, *traceOut, *jsonOut)
		return
	}
	if runMode == "record" {
		res, err := recordOnce(ctx, cfg, *bench, *asmFile, sc, *grid, *block, *traceOut, *scale)
		if err != nil {
			fatal("%v", err)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(res); err != nil {
				fatal("%v", err)
			}
		} else {
			printSummary(res)
			fmt.Printf("\ntrace               %s written to %s\n", warped.TraceSchema, *traceOut)
		}
		return
	}

	// With -compare -parallel, the baseline simulates concurrently with the
	// main configuration; the simulator itself is deterministic, so the
	// numbers are identical either way.
	var (
		baseRes <-chan runOutcome
		base    = cfg
	)
	// RRCD redirection needs compression; the uncompressed baseline keeps
	// the same stuck banks but cannot remap around them.
	base.Mode, base.PowerGating = warped.ModeOff, false
	base.Faults.Redirect = false
	if *compare && *parallel {
		ch := make(chan runOutcome, 1)
		go func() {
			res, err := runOnce(ctx, base, *bench, *asmFile, sc, *grid, *block)
			ch <- runOutcome{res, err}
		}()
		baseRes = ch
	}

	res, err := runOnce(ctx, cfg, *bench, *asmFile, sc, *grid, *block)
	if err != nil {
		if cfg.Faults.Enabled() {
			// A corrupted address or loop register usually kills the
			// launch outright — that IS the experiment's result.
			fatal("kernel crashed under injected faults (%s): %v", cfg.Faults.String(), err)
		}
		fatal("%v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatal("%v", err)
		}
		if !*compare {
			return
		}
	} else {
		printSummary(res)
	}

	if *compare {
		bres, err := waitBaseline(ctx, baseRes, base, *bench, *asmFile, sc, *grid, *block)
		if err != nil {
			fatal("baseline: %v", err)
		}
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(bres); err != nil {
				fatal("%v", err)
			}
			return
		}
		p := warped.DefaultEnergyParams()
		e := warped.ComputeEnergy(p, res.Energy)
		be := warped.ComputeEnergy(p, bres.Energy)
		fmt.Printf("\nvs baseline (no compression):\n")
		fmt.Printf("  execution time    %+0.2f%%\n", 100*(float64(res.Cycles)/float64(bres.Cycles)-1))
		fmt.Printf("  total RF energy   %-0.1f%% saved\n", 100*(1-e.TotalPJ()/be.TotalPJ()))
		fmt.Printf("  dynamic energy    %-0.1f%% saved\n", 100*(1-e.DynamicPJ/be.DynamicPJ))
		fmt.Printf("  leakage energy    %-0.1f%% saved\n", 100*(1-e.LeakagePJ/be.LeakagePJ))
	}
}

// runOutcome carries the concurrent baseline's result.
type runOutcome struct {
	res *warped.Result
	err error
}

// waitBaseline collects the concurrent baseline run, or simulates it now
// when -parallel was not given.
func waitBaseline(ctx context.Context, ch <-chan runOutcome, base warped.Config,
	bench, asmFile string, sc warped.Scale, grid, block int) (*warped.Result, error) {
	if ch != nil {
		out := <-ch
		return out.res, out.err
	}
	return runOnce(ctx, base, bench, asmFile, sc, grid, block)
}

func runOnce(ctx context.Context, cfg warped.Config, bench, asmFile string, sc warped.Scale, grid, block int) (*warped.Result, error) {
	gpu, err := warped.NewGPU(cfg)
	if err != nil {
		return nil, err
	}
	switch {
	case bench != "":
		b, ok := warped.BenchmarkByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (use -list)", bench)
		}
		inst, err := b.Build(gpu.Mem(), sc)
		if err != nil {
			return nil, err
		}
		res, err := gpu.RunContext(ctx, inst.Launch)
		if err != nil {
			return nil, err
		}
		if err := inst.Check(gpu.Mem()); err != nil {
			// Injected faults are expected to corrupt kernels: report the
			// miscomputation but still show what it cost.
			if cfg.Faults.Enabled() {
				fmt.Fprintf(os.Stderr, "warpedsim: output INCORRECT under injected faults: %v\n", err)
				return res, nil
			}
			return nil, fmt.Errorf("output validation failed: %w", err)
		}
		return res, nil
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		k, err := warped.Assemble(asmFile, string(src))
		if err != nil {
			return nil, err
		}
		return gpu.RunContext(ctx, warped.Launch{Kernel: k, Grid: warped.Dim3{X: grid}, Block: warped.Dim3{X: block}})
	}
	return nil, fmt.Errorf("need -bench or -asm (or -list)")
}

// recordOnce executes the kernel once in record mode, validates its output
// and persists the captured functional execution as a warped.trace/v1 file
// at path. The returned Result is byte-identical to an execute-mode run.
func recordOnce(ctx context.Context, cfg warped.Config, bench, asmFile string, sc warped.Scale,
	grid, block int, path, scaleName string) (*warped.Result, error) {
	gpu, err := warped.NewGPU(cfg)
	if err != nil {
		return nil, err
	}
	var (
		launch warped.Launch
		check  func(*warped.Memory) error
		meta   warped.TraceMeta
	)
	switch {
	case bench != "":
		b, ok := warped.BenchmarkByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q (use -list)", bench)
		}
		inst, err := b.Build(gpu.Mem(), sc)
		if err != nil {
			return nil, err
		}
		launch, check = inst.Launch, inst.Check
		meta.Benchmark, meta.Scale = bench, scaleName
	case asmFile != "":
		src, err := os.ReadFile(asmFile)
		if err != nil {
			return nil, err
		}
		k, err := warped.Assemble(asmFile, string(src))
		if err != nil {
			return nil, err
		}
		launch = warped.Launch{Kernel: k, Grid: warped.Dim3{X: grid}, Block: warped.Dim3{X: block}}
	default:
		return nil, fmt.Errorf("need -bench or -asm (or -list)")
	}
	res, lt, err := gpu.RecordContextBeat(ctx, launch, nil)
	if err != nil {
		return nil, err
	}
	if check != nil {
		if err := check(gpu.Mem()); err != nil {
			return nil, fmt.Errorf("output validation failed (trace not written): %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	tr := &warped.Trace{Meta: meta, Launches: []*warped.TraceLaunch{lt}}
	if err := warped.WriteTrace(f, tr); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// replayTrace re-times every launch of a recorded trace under cfg. The
// trace is self-contained, so no benchmark build or output check happens;
// validity was anchored when the trace was recorded.
func replayTrace(ctx context.Context, cfg warped.Config, path string, jsonOut bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	tr, err := warped.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal("-trace %s: %v", path, err)
	}
	if !jsonOut && tr.Meta.Benchmark != "" {
		fmt.Printf("replaying %s (%s scale, recorded as %s)\n\n", tr.Meta.Benchmark, tr.Meta.Scale, tr.Meta.Schema)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	for i, lt := range tr.Launches {
		gpu, err := warped.NewGPU(cfg)
		if err != nil {
			fatal("%v", err)
		}
		res, err := gpu.ReplayContextBeat(ctx, lt, nil)
		if err != nil {
			fatal("replay launch %d: %v", i+1, err)
		}
		switch {
		case jsonOut:
			if err := enc.Encode(res); err != nil {
				fatal("%v", err)
			}
		default:
			if len(tr.Launches) > 1 {
				fmt.Printf("-- launch %d/%d --\n", i+1, len(tr.Launches))
			}
			printSummary(res)
		}
	}
}

func printSummary(res *warped.Result) {
	s := &res.Stats
	fmt.Printf("cycles              %d\n", res.Cycles)
	fmt.Printf("warp instructions   %d (%.1f%% divergent)\n", s.Instructions,
		100*(1-s.NonDivergentRatio()))
	fmt.Printf("dummy MOVs          %d (%.3f%% of instructions)\n", s.DummyMovs, 100*s.DummyMovRatio())
	fmt.Printf("register writes     %d non-divergent, %d divergent\n",
		s.RegWrites[warped.NonDivergent], s.RegWrites[warped.Divergent])
	fmt.Printf("compression ratio   %.2f non-divergent", s.CompressionRatio(warped.NonDivergent))
	if s.RegWrites[warped.Divergent] > 0 {
		fmt.Printf(", %.2f divergent", s.CompressionRatio(warped.Divergent))
	}
	fmt.Println()
	fmt.Printf("bank accesses       %d reads, %d writes\n", s.RF.BankReads, s.RF.BankWrites)
	fmt.Printf("comp/decomp acts    %d / %d\n", s.CompActs, s.DecompActs)
	gated := 1 - float64(s.RF.PoweredBankCycles)/float64(s.RF.Cycles*32)
	if !math.IsNaN(gated) {
		fmt.Printf("gated bank-cycles   %.1f%%\n", 100*gated)
	}
	e := warped.ComputeEnergy(warped.DefaultEnergyParams(), res.Energy)
	fmt.Printf("RF energy           %.1f uJ (dyn %.1f, leak %.1f, comp %.1f, decomp %.1f)\n",
		e.TotalPJ()/1e6, e.DynamicPJ/1e6, e.LeakagePJ/1e6, e.CompressPJ/1e6, e.DecompressPJ/1e6)
	if s.FaultStuckWrites > 0 || s.FaultTransientFlips > 0 || s.RF.RedirectedWrites > 0 {
		fmt.Printf("injected faults     %d stuck-bank writes (%d lanes corrupted), %d transient flips\n",
			s.FaultStuckWrites, s.FaultCorruptedLanes, s.FaultTransientFlips)
		fmt.Printf("RRCD redirections   %d compressed writes steered around faulty banks\n",
			s.RF.RedirectedWrites)
	}
}

// schemeList renders the registered compression scheme names for flag help.
func schemeList() string {
	return strings.Join(warped.CompressionSchemes(), ", ")
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "warpedsim: "+format+"\n", args...)
	os.Exit(1)
}

// warpedreport regenerates the paper's exhibits and emits a markdown
// paper-vs-measured report: for every figure with a quantitative headline
// claim, the paper's number next to the suite average this model produces.
// It automates the comparison table of EXPERIMENTS.md so the repository's
// claims can be re-checked after any change with one command.
//
// Usage:
//
//	warpedreport                     # medium scale, all benchmarks
//	warpedreport -scale small -o report.md
//	warpedreport -parallel 8 -timeout 1h
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/version"
	"repro/warped"
)

// claim describes one quantitative headline from the paper and how to read
// the corresponding measurement out of a regenerated exhibit.
type claim struct {
	id      string
	what    string
	paper   string
	measure func(t *warped.Table) string
}

// avg returns the named column's AVG-row value.
func avg(t *warped.Table, col string) float64 {
	ci := -1
	for i, c := range t.Columns {
		if c == col {
			ci = i
			break
		}
	}
	if ci < 0 {
		return math.NaN()
	}
	for _, r := range t.Rows {
		if r.Label == "AVG" && ci < len(r.Values) {
			return r.Values[ci]
		}
	}
	return math.NaN()
}

func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

var claims = []claim{
	{"fig2", "non-divergent writes that are not random", "~79%",
		func(t *warped.Table) string { return pct(1 - avg(t, "nd-random")) }},
	{"fig3", "non-divergent warp instructions", "79%",
		func(t *warped.Table) string { return pct(avg(t, "non-divergent")) }},
	{"fig5", "writes where the explorer picks an 8-byte base", "rarely (~0%)",
		func(t *warped.Table) string {
			return pct(avg(t, "<8,0>") + avg(t, "<8,1>") + avg(t, "<8,2>") + avg(t, "<8,4>"))
		}},
	{"fig8", "compression ratio, non-divergent / divergent", "2.5 / 1.3",
		func(t *warped.Table) string {
			return fmt.Sprintf("%.2f / %.2f", avg(t, "non-divergent"), avg(t, "divergent"))
		}},
	{"fig9", "total register file energy saved", "25%",
		func(t *warped.Table) string { return pct(1 - avg(t, "wc-total")) }},
	{"fig11", "dummy MOV share of instructions", "< 2% everywhere",
		func(t *warped.Table) string { return pct(avg(t, "mov-fraction")) + " average" }},
	{"fig13", "execution time increase", "0.1%",
		func(t *warped.Table) string { return pct(avg(t, "normalized-cycles") - 1) }},
	{"fig14", "energy saved, GTO / LRR", "25% / 26%",
		func(t *warped.Table) string {
			return fmt.Sprintf("%s / %s", pct(1-avg(t, "gto")), pct(1-avg(t, "lrr")))
		}},
	{"fig15", "<4,0>-only compression ratio vs warped", "~30% lower",
		func(t *warped.Table) string {
			return pct(1-avg(t, "<4,0>")/avg(t, "warped")) + " lower"
		}},
	{"fig17", "energy saved at 2.5x unit activation energy", "14%",
		func(t *warped.Table) string { return pct(1 - avg(t, "2.5x")) }},
	{"fig18", "energy saved at 2.5x bank access energy", "35%",
		func(t *warped.Table) string { return pct(1 - avg(t, "2.5x")) }},
	{"fig19", "energy saved at 100% wire activity", "31%",
		func(t *warped.Table) string { return pct(1 - avg(t, "100%")) }},
	{"fig20", "slowdown at 8-cycle compression latency", "part of the +14% worst case",
		func(t *warped.Table) string { return pct(avg(t, "8cy") - 1) }},
	{"fig21", "slowdown at 8-cycle decompression latency", "part of the +14% worst case",
		func(t *warped.Table) string { return pct(avg(t, "8cy") - 1) }},
}

func main() {
	var (
		scale    = flag.String("scale", "medium", "workload scale: small, medium or large")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all)")
		out      = flag.String("o", "", "write the report to a file instead of stdout")
		full     = flag.Bool("tables", false, "append the full per-benchmark tables after the summary")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
	smPar    = flag.Int("sm-parallel", 0, "SM-loop shards per simulation (0 = auto: CPUs/parallelism); results are byte-identical at every count")
		compr    = flag.String("compression", "", "base compression for every exhibit: off, warped, only40, only41, only42, or a registered scheme ("+strings.Join(warped.CompressionSchemes(), ", ")+")")
		timeout  = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
		retries  = flag.Int("retries", 0, "extra attempts per job after a transient failure")
		watchdog = flag.Duration("watchdog", 0, "cancel a simulation making no progress for this long (0 = off)")
		verbose  = flag.Bool("v", false, "log each simulation run")
		showVer  = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("warpedreport"))
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var benchList []string
	opts := []warped.ExperimentOption{
		warped.WithParallelism(*parallel),
		warped.WithSMParallel(*smPar),
		warped.WithRetries(*retries),
		warped.WithWatchdog(*watchdog),
	}
	switch *scale {
	case "small":
		opts = append(opts, warped.WithScale(warped.Small))
	case "medium":
		opts = append(opts, warped.WithScale(warped.Medium))
	case "large":
		opts = append(opts, warped.WithScale(warped.Large))
	default:
		fatal("unknown scale %q", *scale)
	}
	if *compr != "" {
		base := warped.DefaultConfig()
		if err := base.ApplyCompression(*compr); err != nil {
			fatal("%v", err)
		}
		opts = append(opts, warped.WithBaseConfig(base))
	}
	if *benches != "" {
		benchList = strings.Split(*benches, ",")
		opts = append(opts, warped.WithBenchmarks(benchList...))
	}
	if *verbose {
		opts = append(opts, warped.WithProgress(func(ev warped.ExperimentEvent) {
			if ev.Kind == warped.ExperimentJobDone && ev.Err == nil {
				fmt.Fprintf(os.Stderr, "ran %-12s [%s] cycles=%d in %v\n",
					ev.Benchmark, ev.Config, ev.Cycles, ev.Elapsed.Round(time.Millisecond))
			}
		}))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}

	r, err := warped.NewExperiments(ctx, opts...)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Fprintf(w, "# Warped-Compression: paper vs. measured (%s scale, %d benchmarks)\n\n",
		*scale, benchCount(benchList))
	fmt.Fprintln(w, "| Exhibit | Quantity | Paper | Measured |")
	fmt.Fprintln(w, "|---|---|---|---|")
	tables := map[string]*warped.Table{}
	for _, c := range claims {
		t, ok := tables[c.id]
		if !ok {
			var err error
			t, err = r.Run(c.id)
			if err != nil {
				fatal("%s: %v", c.id, err)
			}
			tables[c.id] = t
		}
		fmt.Fprintf(w, "| %s | %s | %s | %s |\n", c.id, c.what, c.paper, c.measure(t))
	}

	if *full {
		fmt.Fprintf(w, "\n## Full tables\n\n")
		for _, id := range warped.ExperimentIDs() {
			t, err := r.Run(id)
			if err != nil {
				fatal("%s: %v", id, err)
			}
			fmt.Fprintln(w, "```")
			if err := t.Render(w); err != nil {
				fatal("%v", err)
			}
			fmt.Fprintln(w, "```")
		}
	}
}

func benchCount(subset []string) int {
	if subset != nil {
		return len(subset)
	}
	return len(warped.Benchmarks())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "warpedreport: "+format+"\n", args...)
	os.Exit(1)
}

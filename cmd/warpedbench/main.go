// warpedbench regenerates the tables and figures of the warped-compression
// paper (ISCA 2015) on the simulated GPU. Simulations fan out across a
// worker pool (one per CPU by default); output is byte-identical at every
// parallelism level.
//
// Usage:
//
//	warpedbench -exp all                 # every exhibit, medium scale
//	warpedbench -exp fig9,fig13 -v       # headline results with progress
//	warpedbench -exp fig8 -benchmarks bfs,lib -scale small
//	warpedbench -parallel 4 -timeout 30m # bounded workers and wall time
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/warped"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated exhibit ids ("+strings.Join(warped.ExperimentIDs(), ",")+") or 'all'")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 20)")
		scale    = flag.String("scale", "medium", "workload scale: small, medium or large")
		out      = flag.String("o", "", "write output to file instead of stdout")
		format   = flag.String("format", "text", "output format: text or csv")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
		timeout  = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
		verbose  = flag.Bool("v", false, "log each simulation run")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []warped.ExperimentOption{warped.WithParallelism(*parallel)}
	switch *scale {
	case "small":
		opts = append(opts, warped.WithScale(warped.Small))
	case "medium":
		opts = append(opts, warped.WithScale(warped.Medium))
	case "large":
		opts = append(opts, warped.WithScale(warped.Large))
	default:
		fatal("unknown scale %q", *scale)
	}
	if *benches != "" {
		opts = append(opts, warped.WithBenchmarks(strings.Split(*benches, ",")...))
	}
	if *verbose {
		opts = append(opts, warped.WithProgress(progress))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}

	ids := warped.ExperimentIDs()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}

	r := warped.NewExperiments(ctx, opts...)
	for _, id := range ids {
		t, err := r.Run(strings.TrimSpace(id))
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fatal("%s: timed out after %v", id, *timeout)
			}
			fatal("%s: %v", id, err)
		}
		switch *format {
		case "text":
			err = t.Render(w)
		case "csv":
			fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
			err = t.RenderCSV(w)
		default:
			fatal("unknown format %q", *format)
		}
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintln(w)
	}
}

// progress renders the structured event stream as one line per event.
func progress(ev warped.ExperimentEvent) {
	switch ev.Kind {
	case warped.ExperimentJobStart:
		fmt.Fprintf(os.Stderr, "start %-12s [%s]\n", ev.Benchmark, ev.Config)
	case warped.ExperimentJobDone:
		if ev.Err != nil {
			fmt.Fprintf(os.Stderr, "fail  %-12s: %v\n", ev.Benchmark, ev.Err)
			return
		}
		fmt.Fprintf(os.Stderr, "done  %-12s cycles=%-10d %v\n", ev.Benchmark, ev.Cycles, ev.Elapsed.Round(time.Millisecond))
	case warped.ExperimentCacheHit:
		fmt.Fprintf(os.Stderr, "hit   %-12s [%s]\n", ev.Benchmark, ev.Config)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "warpedbench: "+format+"\n", args...)
	os.Exit(1)
}

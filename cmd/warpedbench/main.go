// warpedbench regenerates the tables and figures of the warped-compression
// paper (ISCA 2015) on the simulated GPU. Simulations fan out across a
// worker pool (one per CPU by default); output is byte-identical at every
// parallelism level.
//
// Usage:
//
//	warpedbench -exp all                 # every exhibit, medium scale
//	warpedbench -exp fig9,fig13 -v       # headline results with progress
//	warpedbench -exp fig8 -benchmarks bfs,lib -scale small
//	warpedbench -parallel 4 -timeout 30m # bounded workers and wall time
//	warpedbench -keep-going -watchdog 2m # partial results + failure report
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/prof"
	"repro/internal/version"
	"repro/warped"
)

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated exhibit ids ("+strings.Join(warped.ExperimentIDs(), ",")+") or 'all'")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 20)")
		scale    = flag.String("scale", "medium", "workload scale: small, medium or large")
		out      = flag.String("o", "", "write output to file instead of stdout")
		format   = flag.String("format", "text", "output format: text or csv")
		parallel = flag.Int("parallel", 0, "max concurrent simulations (0 = one per CPU)")
		smPar    = flag.Int("sm-parallel", 0, "SM-loop shards per simulation (0 = auto: CPUs/parallelism); results are byte-identical at every count")
		compr    = flag.String("compression", "", "base compression for every exhibit: off, warped, only40, only41, only42, or a registered scheme ("+strings.Join(warped.CompressionSchemes(), ", ")+"); exhibits that pin their own mode still override it")
		timeout  = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
		retries  = flag.Int("retries", 0, "extra attempts per job after a transient failure")
		backoff  = flag.Duration("retry-backoff", 0, "delay before the first retry, doubling each retry (default 100ms)")
		watchdog = flag.Duration("watchdog", 0, "cancel a simulation making no progress for this long (0 = off)")
		keepOn   = flag.Bool("keep-going", false, "don't stop at the first failure: emit every healthy exhibit plus a failure report (exit 1 if anything failed)")
		verbose  = flag.Bool("v", false, "log each simulation run")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file (inspect with go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		showVer  = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("warpedbench"))
		return
	}

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fatal("%v", err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := []warped.ExperimentOption{
		warped.WithParallelism(*parallel),
		warped.WithSMParallel(*smPar),
		warped.WithRetries(*retries),
		warped.WithWatchdog(*watchdog),
	}
	if *backoff > 0 {
		opts = append(opts, warped.WithRetryBackoff(*backoff))
	}
	if *compr != "" {
		base := warped.DefaultConfig()
		if err := base.ApplyCompression(*compr); err != nil {
			fatal("%v", err)
		}
		opts = append(opts, warped.WithBaseConfig(base))
	}
	switch *scale {
	case "small":
		opts = append(opts, warped.WithScale(warped.Small))
	case "medium":
		opts = append(opts, warped.WithScale(warped.Medium))
	case "large":
		opts = append(opts, warped.WithScale(warped.Large))
	default:
		fatal("unknown scale %q", *scale)
	}
	if *benches != "" {
		opts = append(opts, warped.WithBenchmarks(strings.Split(*benches, ",")...))
	}
	if *verbose {
		opts = append(opts, warped.WithProgress(progress))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}

	ids := warped.ExperimentIDs()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}

	r, err := warped.NewExperiments(ctx, opts...)
	if err != nil {
		fatal("%v", err)
	}

	if *keepOn {
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
		rep, err := r.RunPartial(ids...)
		if err != nil {
			fatal("%v", err)
		}
		for _, t := range rep.Tables {
			render(w, t, *format)
			fmt.Fprintln(w)
		}
		if rep.Failed() {
			fmt.Fprint(os.Stderr, rep.Render())
			if err := stopProf(); err != nil { // os.Exit skips the deferred flush
				fmt.Fprintln(os.Stderr, err)
			}
			os.Exit(1)
		}
		return
	}

	for _, id := range ids {
		t, err := r.Run(strings.TrimSpace(id))
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				fatal("%s: timed out after %v", id, *timeout)
			}
			fatal("%s: %v", id, err)
		}
		render(w, t, *format)
		fmt.Fprintln(w)
	}
}

func render(w io.Writer, t *warped.Table, format string) {
	var err error
	switch format {
	case "text":
		err = t.Render(w)
	case "csv":
		fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
		err = t.RenderCSV(w)
	default:
		fatal("unknown format %q", format)
	}
	if err != nil {
		fatal("%v", err)
	}
}

// progress renders the structured event stream as one line per event.
func progress(ev warped.ExperimentEvent) {
	switch ev.Kind {
	case warped.ExperimentJobStart:
		fmt.Fprintf(os.Stderr, "start %-12s [%s]\n", ev.Benchmark, ev.Config)
	case warped.ExperimentJobDone:
		if ev.Err != nil {
			fmt.Fprintf(os.Stderr, "fail  %-12s: %v\n", ev.Benchmark, ev.Err)
			return
		}
		fmt.Fprintf(os.Stderr, "done  %-12s cycles=%-10d %v\n", ev.Benchmark, ev.Cycles, ev.Elapsed.Round(time.Millisecond))
	case warped.ExperimentJobRetry:
		fmt.Fprintf(os.Stderr, "retry %-12s attempt %d failed: %v\n", ev.Benchmark, ev.Attempt+1, ev.Err)
	case warped.ExperimentCacheHit:
		fmt.Fprintf(os.Stderr, "hit   %-12s [%s]\n", ev.Benchmark, ev.Config)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "warpedbench: "+format+"\n", args...)
	os.Exit(1)
}

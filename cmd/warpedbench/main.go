// warpedbench regenerates the tables and figures of the warped-compression
// paper (ISCA 2015) on the simulated GPU.
//
// Usage:
//
//	warpedbench -exp all                 # every exhibit, medium scale
//	warpedbench -exp fig9,fig13 -v       # headline results with progress
//	warpedbench -exp fig8 -benchmarks bfs,lib -scale small
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/warped"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated exhibit ids ("+strings.Join(warped.ExperimentIDs(), ",")+") or 'all'")
		benches = flag.String("benchmarks", "", "comma-separated benchmark subset (default: all 20)")
		scale   = flag.String("scale", "medium", "workload scale: small, medium or large")
		out     = flag.String("o", "", "write output to file instead of stdout")
		format  = flag.String("format", "text", "output format: text or csv")
		verbose = flag.Bool("v", false, "log each simulation run")
	)
	flag.Parse()

	opts := warped.ExperimentOptions{}
	switch *scale {
	case "small":
		opts.Scale = warped.Small
	case "medium":
		opts.Scale = warped.Medium
	case "large":
		opts.Scale = warped.Large
	default:
		fatal("unknown scale %q", *scale)
	}
	if *benches != "" {
		opts.Benchmarks = strings.Split(*benches, ",")
	}
	if *verbose {
		opts.Progress = os.Stderr
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		w = f
	}

	ids := warped.ExperimentIDs()
	if *exps != "all" {
		ids = strings.Split(*exps, ",")
	}

	r := warped.NewExperimentRunner(opts)
	for _, id := range ids {
		t, err := r.Run(strings.TrimSpace(id))
		if err != nil {
			fatal("%s: %v", id, err)
		}
		switch *format {
		case "text":
			err = t.Render(w)
		case "csv":
			fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title)
			err = t.RenderCSV(w)
		default:
			fatal("unknown format %q", *format)
		}
		if err != nil {
			fatal("%v", err)
		}
		fmt.Fprintln(w)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "warpedbench: "+format+"\n", args...)
	os.Exit(1)
}

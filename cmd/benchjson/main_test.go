package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBDICompress   	 1000000	        26.62 ns/op	       0 B/op	       0 allocs/op
BenchmarkSimulatorThroughput-8 	     601	   3994904 ns/op	    512153 sim-cycles/s	  418696 B/op	     675 allocs/op
BenchmarkRegfileAccess/clean         	  100000	        40.33 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro	2.807s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Schema != Schema {
		t.Fatalf("schema %q", doc.Schema)
	}
	if doc.Pkg != "repro" || !strings.Contains(doc.CPU, "Xeon") {
		t.Fatalf("metadata not captured: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(doc.Benchmarks))
	}

	b := doc.Benchmarks[0]
	if b.Name != "BenchmarkBDICompress" || b.Procs != 1 || b.Iterations != 1000000 {
		t.Fatalf("first benchmark: %+v", b)
	}
	if len(b.Metrics) != 3 || b.Metrics[0].Unit != "ns/op" || b.Metrics[0].Value != 26.62 {
		t.Fatalf("first metrics: %+v", b.Metrics)
	}

	b = doc.Benchmarks[1]
	if b.Name != "BenchmarkSimulatorThroughput" || b.Procs != 8 {
		t.Fatalf("procs suffix not stripped: %+v", b)
	}
	if len(b.Metrics) != 4 || b.Metrics[1].Unit != "sim-cycles/s" || b.Metrics[1].Value != 512153 {
		t.Fatalf("custom metric lost: %+v", b.Metrics)
	}

	if doc.Benchmarks[2].Name != "BenchmarkRegfileAccess/clean" {
		t.Fatalf("sub-benchmark name mangled: %q", doc.Benchmarks[2].Name)
	}
}

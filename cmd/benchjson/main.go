// benchjson converts `go test -bench` text output into a versioned JSON
// document ("warped.bench/v1") so benchmark trajectories can be archived,
// diffed and plotted alongside the simulator's warped.sim.result/v1 files.
//
// It reads benchmark text on stdin (or from a file argument) and writes JSON
// to stdout. The text input is passed through untouched for benchstat; this
// tool only adds a machine-readable sibling:
//
//	go test -bench . -benchmem | tee bench.txt | benchjson -stamp "$(date -u +%Y%m%dT%H%M%SZ)" > bench.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/version"
)

// Schema identifies the JSON layout emitted by this tool.
const Schema = "warped.bench/v1"

// Metric is one "value unit" pair of a benchmark result line.
type Metric struct {
	Value float64 `json:"value"`
	Unit  string  `json:"unit"`
}

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string   `json:"name"`
	Procs      int      `json:"procs"` // GOMAXPROCS suffix (-N), 1 if absent
	Iterations int64    `json:"iterations"`
	Metrics    []Metric `json:"metrics"`
}

// Document is the top-level JSON object.
type Document struct {
	Schema     string      `json:"schema"`
	Stamp      string      `json:"stamp,omitempty"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	stamp := flag.String("stamp", "", "timestamp or label recorded in the document")
	showVer := flag.Bool("version", false, "print the build identity and exit")
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("benchjson"))
		return
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		in = f
	}

	doc, err := parse(in)
	if err != nil {
		fatal("%v", err)
	}
	doc.Stamp = *stamp

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fatal("%v", err)
	}
}

// parse scans go-test benchmark output. Result lines have the shape
//
//	BenchmarkName[-procs] <tab> iterations <tab> value unit [value unit ...]
//
// Header lines (goos:, goarch:, pkg:, cpu:) fill document metadata; anything
// else is ignored.
func parse(r io.Reader) (*Document, error) {
	doc := &Document{
		Schema:     Schema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: []Benchmark{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "BenchmarkFoo--- FAIL" noise
		}
		b := Benchmark{Name: fields[0], Procs: 1, Iterations: iters, Metrics: []Metric{}}
		if i := strings.LastIndex(b.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
				b.Name, b.Procs = b.Name[:i], p
			}
		}
		// Remaining fields come in "value unit" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			b.Metrics = append(b.Metrics, Metric{Value: v, Unit: fields[i+1]})
		}
		doc.Benchmarks = append(doc.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchjson: %w", err)
	}
	return doc, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchjson: "+format+"\n", args...)
	os.Exit(1)
}

// warpedd serves the warped-compression simulator over HTTP: submit
// simulation jobs, poll or stream their progress, and scrape Prometheus
// metrics. It fronts the same experiments engine the CLIs use — identical
// configs are deduplicated in flight and served from a bounded result
// cache, keyed by the shared config signature.
//
// Usage:
//
//	warpedd                                  # listen on :8077
//	warpedd -addr :9000 -parallel 8 -queue 256 -cache 4096
//	warpedd -scale small -watchdog 2m -retries 1
//	warpedd -store-dir /var/lib/warpedd -store-budget 2GiB
//	warpedd -tenants tenants.json            # per-tenant API keys and limits
//
// A quick session:
//
//	curl -s localhost:8077/v1/jobs -d '{"benchmark":"bfs"}'
//	curl -s localhost:8077/v1/jobs/job-000001
//	curl -N  localhost:8077/v1/jobs/job-000001/events   # SSE, ends when done
//	curl -s  localhost:8077/metrics
//
// On SIGINT/SIGTERM the daemon drains: /readyz flips to 503, new
// submissions are rejected with 503, and in-flight jobs get -drain-timeout
// to finish before the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/jobs"
	"repro/internal/kernels"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/version"
	"repro/warped"
)

// parseBytes parses a human byte size: a plain integer, or one with a
// K/M/G/T suffix in decimal (KB, MB, ...) or binary (KiB, MiB, ...) form.
// A bare suffix letter ("512M") means binary, matching operator habit.
func parseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	num := s
	mult := int64(1)
	suffixes := []struct {
		suffix string
		mult   int64
	}{
		{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}, {"TiB", 1 << 40},
		{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"T", 1 << 40},
		{"B", 1},
	}
	for _, sf := range suffixes {
		if len(s) > len(sf.suffix) && strings.EqualFold(s[len(s)-len(sf.suffix):], sf.suffix) {
			num, mult = strings.TrimSpace(s[:len(s)-len(sf.suffix)]), sf.mult
			break
		}
	}
	n, err := strconv.ParseInt(num, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("byte size %q is negative", s)
	}
	return n * mult, nil
}

func main() {
	var (
		addr     = flag.String("addr", ":8077", "listen address")
		parallel = flag.Int("parallel", 0, "worker pool size and max concurrent simulations (0 = one per CPU)")
		smPar    = flag.Int("sm-parallel", 0, "SM-loop shards per simulation (0 = auto: CPUs/workers); results are byte-identical at every count")
		queue    = flag.Int("queue", 64, "admission queue depth; submissions beyond it get 429")
		cache    = flag.Int("cache", 1024, "result cache size in entries (0 disables caching)")
		retain   = flag.Int("retain", 1024, "finished jobs kept queryable before the oldest are forgotten")
		scale    = flag.String("scale", "small", "workload scale served: small, medium or large")
		retries  = flag.Int("retries", 0, "extra attempts per job after a transient failure")
		backoff  = flag.Duration("retry-backoff", 0, "delay before the first retry, doubling each retry (default 100ms)")
		watchdog = flag.Duration("watchdog", 0, "cancel a simulation making no progress for this long (0 = off)")
		drainFor = flag.Duration("drain-timeout", 2*time.Minute, "how long a shutdown signal waits for in-flight jobs")
		sseKA    = flag.Duration("sse-keepalive", 15*time.Second, "interval between keep-alive comments on idle event streams")
		storeDir = flag.String("store-dir", "", "disk store directory; results and traces persist across restarts (empty = memory only)")
		storeBud = flag.String("store-budget", "0", "disk store byte budget, e.g. 512MiB or 2GB (0 = unlimited); LRU entries beyond it are deleted")
		traceBud = flag.String("trace-budget", "0", "resident recorded-trace byte budget, e.g. 256MiB (0 = entry cap only)")
		tenants  = flag.String("tenants", "", "JSON tenant roster for API keys, fair-share weights and per-tenant limits (empty = single tenant, no auth)")
		compr    = flag.String("compression", "", "default compression scheme for submissions that don't pick one ("+strings.Join(warped.CompressionSchemes(), ", ")+"); empty = "+warped.DefaultCompressionScheme)
		showVer  = flag.Bool("version", false, "print the build identity and exit")
	)
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("warpedd"))
		return
	}

	var sc kernels.Scale
	switch *scale {
	case "small":
		sc = kernels.Small
	case "medium":
		sc = kernels.Medium
	case "large":
		sc = kernels.Large
	default:
		log.Fatalf("warpedd: unknown -scale %q (have small, medium, large)", *scale)
	}

	storeBudget, err := parseBytes(*storeBud)
	if err != nil {
		log.Fatalf("warpedd: -store-budget: %v", err)
	}
	traceBudget, err := parseBytes(*traceBud)
	if err != nil {
		log.Fatalf("warpedd: -trace-budget: %v", err)
	}
	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir, store.Options{BudgetBytes: storeBudget, Log: log.Printf})
		if err != nil {
			log.Fatalf("warpedd: %v", err)
		}
		ss := st.Stats()
		log.Printf("warpedd: disk store %s: %d entries, %d bytes (budget %d)", *storeDir, ss.Entries, ss.Bytes, ss.Budget)
	}
	var roster []jobs.Tenant
	if *tenants != "" {
		f, err := os.Open(*tenants)
		if err != nil {
			log.Fatalf("warpedd: -tenants: %v", err)
		}
		roster, err = jobs.ParseTenants(f)
		f.Close()
		if err != nil {
			log.Fatalf("warpedd: -tenants %s: %v", *tenants, err)
		}
		log.Printf("warpedd: %d tenants configured; submissions require a known API key (or the keyless tenant)", len(roster))
	}

	mgr := jobs.NewManager(context.Background(), jobs.Config{
		Workers:         *parallel,
		SMParallel:      *smPar,
		QueueDepth:      *queue,
		CacheSize:       *cache,
		RetainJobs:      *retain,
		Scale:           sc,
		Retries:         *retries,
		RetryBackoff:    *backoff,
		Watchdog:        *watchdog,
		Store:           st,
		TraceStoreBytes: traceBudget,
		Tenants:         roster,
	})
	api := server.New(mgr)
	api.SetSSEKeepAlive(*sseKA)
	if *compr != "" {
		if !warped.CompressionSchemeRegistered(*compr) {
			log.Fatalf("warpedd: -compression: unknown scheme %q (have %s)", *compr, strings.Join(warped.CompressionSchemes(), ", "))
		}
		api.SetDefaultCompression(*compr)
		log.Printf("warpedd: default compression scheme %q", *compr)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: api.Handler(),
	}

	// Serve until a shutdown signal, then drain before closing the
	// listener: load balancers see /readyz go 503 while in-flight work
	// finishes, and only then do open connections get torn down.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("warpedd %s listening on %s (workers=%d queue=%d cache=%d scale=%s)",
		version.Get("warpedd").Version, *addr, mgr.Stats().Workers, *queue, *cache, sc)

	select {
	case err := <-errc:
		log.Fatalf("warpedd: %v", err)
	case sig := <-sigc:
		log.Printf("warpedd: %v: draining (timeout %s)", sig, *drainFor)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := mgr.Drain(ctx); err != nil {
		log.Printf("warpedd: %v", err)
	}
	mgr.Close()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("warpedd: shutdown: %v", err)
	}
	log.Print("warpedd: stopped")
}

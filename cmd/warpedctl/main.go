// warpedctl drives a fleet of warpedd workers as one cluster. Its main
// job is sharded sweeps: load a campaign spec (internal/sweep), place
// every (config, benchmark) job on a worker by rendezvous hashing on the
// config signature, stream progress, fail over around dead workers, and
// merge the results into one deterministic warped.campaign/v1 report —
// byte-identical to running the same spec against a single worker.
//
// Usage:
//
//	warpedctl sweep -workers http://a:8077,http://b:8077 -spec sweep.json -o report.json
//	warpedctl info  -workers http://a:8077,http://b:8077
//	warpedctl -version
//
// The sweep exits 0 only when every job produced a result; job failures
// are recorded in the report and surfaced as exit code 1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/sweep"
	"repro/internal/version"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("warpedctl: ")

	showVer := flag.Bool("version", false, "print the build identity and exit")
	flag.Usage = usage
	flag.Parse()
	if *showVer {
		fmt.Println(version.String("warpedctl"))
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch args[0] {
	case "sweep":
		err = runSweep(ctx, args[1:])
	case "info":
		err = runInfo(ctx, args[1:])
	default:
		log.Printf("unknown command %q", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `warpedctl — cluster front-end for warpedd workers

Commands:
  sweep   shard a campaign spec across workers and merge the report
  info    show each worker's identity and health

Run "warpedctl <command> -h" for that command's flags.
`)
}

// workerList parses the shared -workers flag.
func workerList(raw string) ([]string, error) {
	var urls []string
	for _, w := range strings.Split(raw, ",") {
		if w = strings.TrimSpace(w); w != "" {
			urls = append(urls, w)
		}
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("no workers given; use -workers http://host:port[,http://host2:port]")
	}
	return urls, nil
}

func runSweep(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	var (
		workers     = fs.String("workers", "", "comma-separated worker base URLs (required)")
		specPath    = fs.String("spec", "", "campaign spec file (required)")
		out         = fs.String("o", "-", "report destination; - writes to stdout")
		concurrency = fs.Int("concurrency", 0, "max in-flight jobs across the cluster (0 = 4 per worker)")
		attempts    = fs.Int("attempts", 3, "same-worker attempts before declaring it down")
		timeout     = fs.Duration("timeout", 0, "overall sweep deadline (0 = none)")
		apiKey      = fs.String("api-key", "", "tenant API key sent with every request (WARPEDCTL_API_KEY env overrides empty)")
		compression = fs.String("compression", "", "compression scheme merged into the spec's base overrides (explicit config/grid overrides still win)")
		quiet       = fs.Bool("quiet", false, "suppress per-job progress on stderr")
	)
	fs.Parse(args)
	urls, err := workerList(*workers)
	if err != nil {
		return err
	}
	if *specPath == "" {
		return fmt.Errorf("no spec given; use -spec sweep.json")
	}
	spec, err := sweep.Load(*specPath)
	if err != nil {
		return err
	}
	if *compression != "" {
		if err := spec.SetBaseCompression(*compression); err != nil {
			return err
		}
	}
	jobs, err := spec.Jobs()
	if err != nil {
		return err
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	reg, err := cluster.NewRegistry(urls, cluster.RegistryConfig{Log: log.Printf})
	if err != nil {
		return err
	}
	reg.Start(ctx)

	key := *apiKey
	if key == "" {
		key = os.Getenv("WARPEDCTL_API_KEY") // keep secrets out of process listings
	}
	opts := cluster.Options{Concurrency: *concurrency, WorkerAttempts: *attempts, APIKey: key}
	if !*quiet {
		opts.Progress = func(ev cluster.Event) {
			if ev.Detail != "" {
				log.Printf("%s %s @ %s: %s", ev.Kind, ev.Job, ev.Worker, ev.Detail)
			} else {
				log.Printf("%s %s @ %s", ev.Kind, ev.Job, ev.Worker)
			}
		}
	}
	log.Printf("sweep %s: %d jobs over %d workers", spec.Name, len(jobs), len(urls))
	start := time.Now()
	report, err := cluster.New(reg, opts).RunSweep(ctx, spec)
	if err != nil {
		return err
	}
	data, err := report.Marshal()
	if err != nil {
		return err
	}
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			return err
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	failed := report.Failed()
	log.Printf("sweep %s: %d/%d jobs succeeded in %s", spec.Name, len(report.Entries)-failed, len(report.Entries), time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		return fmt.Errorf("%d job(s) failed; see the report", failed)
	}
	return nil
}

func runInfo(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	workers := fs.String("workers", "", "comma-separated worker base URLs (required)")
	fs.Parse(args)
	urls, err := workerList(*workers)
	if err != nil {
		return err
	}
	reg, err := cluster.NewRegistry(urls, cluster.RegistryConfig{})
	if err != nil {
		return err
	}
	reg.ProbeOnce(ctx)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tHEALTHY\tINSTANCE")
	for _, w := range reg.Snapshot() {
		instance := w.Instance
		if instance == "" {
			instance = "-"
		}
		fmt.Fprintf(tw, "%s\t%v\t%s\n", w.URL, w.Healthy, instance)
	}
	return tw.Flush()
}

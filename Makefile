GO ?= go

.PHONY: build test verify bench report clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate (see ROADMAP.md): static analysis plus the full
# test suite under the race detector. The parallel experiment engine is
# exercised concurrently by its own tests, so -race is load-bearing here,
# not ceremonial.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

report:
	$(GO) run ./cmd/warpedreport -o report.md

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: build test verify bench bench-full report serve cluster-smoke store-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate (see ROADMAP.md): static analysis, the full
# test suite under the race detector, and short-budget fuzz passes over the
# parser-shaped surfaces (assembler, BDI codec, fault injector, the
# warped.trace/v1 wire reader) plus the record/replay determinism oracle.
# The parallel experiment engine is exercised concurrently by its own
# tests, so -race is load-bearing here, not ceremonial. The second sim
# pass re-runs the whole package with the SM loop sharded four ways
# (DESIGN.md §17) — every golden and oracle must still hold, and -race
# sweeps the shard workers' actual memory accesses.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	WARPED_TEST_SM_PARALLEL=4 $(GO) test -race ./internal/sim/...
	$(GO) test -run=^$$ -fuzz=FuzzAssemble -fuzztime=3s ./internal/asm
	$(GO) test -run=^$$ -fuzz=FuzzBDIRoundTrip -fuzztime=3s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzSchemeRoundTrip -fuzztime=3s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzInjector -fuzztime=3s ./internal/faults
	$(GO) test -run=^$$ -fuzz=FuzzTraceRead -fuzztime=3s ./internal/exectrace
	$(GO) test -run=^$$ -fuzz=FuzzRecordReplay -fuzztime=3s ./internal/sim
	$(GO) test -run=^$$ -fuzz=FuzzStoreRead -fuzztime=3s ./internal/store

# Benchmark-regression workflow (DESIGN.md §12): `make bench` runs the
# benchmark filter BENCH with allocation reporting, BENCHCOUNT times, and
# leaves two timestamped artifacts in the repo root:
#   BENCH_<stamp>.txt   benchstat-comparable text (benchstat old.txt new.txt)
#   BENCH_<stamp>.json  machine-readable warped.bench/v1 trajectory document
BENCH ?= SimulatorThroughput|BDI|RegfileAccess|GPUCycleSharded|Compressor|GEMM
BENCHTIME ?= 1s
BENCHCOUNT ?= 5
STAMP := $(shell date -u +%Y%m%dT%H%M%SZ)

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime $(BENCHTIME) -count $(BENCHCOUNT) -benchmem . > BENCH_$(STAMP).txt
	@cat BENCH_$(STAMP).txt
	$(GO) run ./cmd/benchjson -stamp $(STAMP) BENCH_$(STAMP).txt > BENCH_$(STAMP).json

# bench-full runs every benchmark once, including the end-to-end exhibit
# regenerations (slow).
bench-full:
	$(GO) test -bench=. -benchmem .

report:
	$(GO) run ./cmd/warpedreport -o report.md

# serve runs the warpedd simulation service (README "Serving", DESIGN.md
# §13). Override the listen address or sizing with SERVE_FLAGS, e.g.
#   make serve SERVE_FLAGS='-addr :9000 -parallel 8 -scale medium'
SERVE_FLAGS ?=
serve:
	$(GO) run ./cmd/warpedd $(SERVE_FLAGS)

# cluster-smoke boots two warpedd workers, shards the smoke campaign
# across them with warpedctl, and asserts the merged report is
# byte-identical to a single-node run (README "Cluster", DESIGN.md §14).
cluster-smoke:
	bash scripts/cluster_smoke.sh

# store-smoke boots a warpedd worker with a disk store, drains it with
# SIGTERM mid-exercise, restarts it on the same store directory, and
# asserts the repeat campaign is served from the store with a
# byte-identical report (README "Serving", DESIGN.md §16).
store-smoke:
	bash scripts/store_restart_smoke.sh

clean:
	$(GO) clean ./...

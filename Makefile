GO ?= go

.PHONY: build test verify bench report clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# verify is the tier-1 gate (see ROADMAP.md): static analysis, the full
# test suite under the race detector, and short-budget fuzz passes over the
# parser-shaped surfaces (assembler, BDI codec, fault injector). The
# parallel experiment engine is exercised concurrently by its own tests, so
# -race is load-bearing here, not ceremonial.
verify:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run=^$$ -fuzz=FuzzAssemble -fuzztime=3s ./internal/asm
	$(GO) test -run=^$$ -fuzz=FuzzBDIRoundTrip -fuzztime=3s ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzInjector -fuzztime=3s ./internal/faults

bench:
	$(GO) test -bench=. -benchmem .

report:
	$(GO) run ./cmd/warpedreport -o report.md

clean:
	$(GO) clean ./...
